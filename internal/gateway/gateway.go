// Package gateway is the multi-host serving tier in front of N
// faasnapd backends: the load balancer the daemon's §4.1 deployment
// story assumes. Placement is snapshot-locality-aware — invocations
// consistent-hash on function name so repeat requests land on the
// backend that already holds the function's snapfile and page-cache
// state (§7.2), with least-loaded spillover when the owner is down,
// draining, saturated, or breaker-open. Failures retry on another
// backend under the client's deadline, so one dead host degrades
// capacity, never availability. See GATEWAY.md.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"faasnap/internal/events"
	"faasnap/internal/telemetry"
	"faasnap/internal/trace"
)

// Policy names a routing policy.
const (
	// PolicySticky is the default: consistent-hash owner first,
	// least-loaded spillover.
	PolicySticky = "sticky"
	// PolicyRandom routes uniformly at random over ready backends — the
	// locality-blind baseline the e2e test measures sticky against.
	PolicyRandom = "random"
)

// Placement values reported in the "placement" response field.
const (
	// PlacementSticky: the request was served by its consistent-hash
	// owner on the first attempt.
	PlacementSticky = "sticky"
	// PlacementSpillover: the owner was unusable (down, unready,
	// saturated, breaker-open) and the first attempt went elsewhere.
	PlacementSpillover = "spillover"
	// PlacementRetry: at least one backend failed or missed and the
	// request was retried on another.
	PlacementRetry = "retry"
)

// Config configures a gateway.
type Config struct {
	// Backends are the daemon addresses (host:port) to route across.
	Backends []string
	// Logger receives operational logs; nil discards them.
	Logger *log.Logger
	// Registry backs GET /metrics; nil creates a private one.
	Registry *telemetry.Registry
	// HealthInterval is the /readyz + /metrics sweep period (default 1s).
	HealthInterval time.Duration
	// RequestTimeout bounds one client request across every backend
	// attempt (default 30s); expiry returns 504.
	RequestTimeout time.Duration
	// RetryAttempts is the most backends one request may be sent to
	// (default 3).
	RetryAttempts int
	// Replicas is how many standby backends receive function
	// registration and snapshot recording besides the owner (default 1).
	Replicas int
	// MaxPerBackend is the per-backend in-flight load above which the
	// owner is considered saturated and spilled over (default 256).
	MaxPerBackend int64
	// BreakerThreshold / BreakerCooldown tune the per-backend circuit
	// breakers (defaults 3 failures, 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Policy is PolicySticky (default) or PolicyRandom.
	Policy string
	// Seed seeds the random policy's picks (0 = 1), keeping baselines
	// reproducible.
	Seed int64
	// VNodes is the ring's virtual-node count per backend (default 64).
	VNodes int
	// QuietHTTP drops the per-request access log line entirely (for load
	// benchmarks; telemetry still counts every request). Scrape noise
	// (/metrics, /healthz) is never logged regardless.
	QuietHTTP bool
}

func (c Config) withDefaults() Config {
	if c.Logger == nil {
		c.Logger = log.New(os.Stderr, "faasnap-gw: ", log.LstdFlags)
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = time.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RetryAttempts == 0 {
		c.RetryAttempts = 3
	}
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.MaxPerBackend == 0 {
		c.MaxPerBackend = 256
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.Policy == "" {
		c.Policy = PolicySticky
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Gateway fronts a set of faasnapd backends.
type Gateway struct {
	cfg  Config
	log  *log.Logger
	pool *Pool
	reg  *telemetry.Registry

	// events is the gateway's own event ledger (repairs, convergence,
	// backend breaker/staleness transitions), merged with the daemons'
	// ledgers by GET /cluster/events; traces holds the anti-entropy
	// sweep traces GET /traces/{id} checks before fanning out.
	events *events.Ledger
	traces *trace.Store

	// proxy is the client for forwarded requests; per-request deadlines
	// come from contexts, not a client timeout.
	proxy *http.Client

	traceSeq atomic.Uint64

	rngMu sync.Mutex
	rng   *rand.Rand
}

// New builds a gateway and runs the first health sweep before
// returning, so routing decisions never start from an unknown state.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends configured")
	}
	if cfg.Policy != PolicySticky && cfg.Policy != PolicyRandom {
		return nil, fmt.Errorf("gateway: unknown policy %q (%s or %s)", cfg.Policy, PolicySticky, PolicyRandom)
	}
	g := &Gateway{
		cfg:    cfg,
		log:    cfg.Logger,
		reg:    cfg.Registry,
		events: events.NewLedger(0),
		traces: trace.NewStore(0),
		proxy:  &http.Client{},
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	g.pool = newPool(cfg.Backends, cfg.VNodes, cfg.HealthInterval, cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Registry)
	g.pool.replicas = cfg.Replicas
	// Wire the ledger and trace store before start: the first sweep
	// (and its anti-entropy pass) runs synchronously inside start.
	g.pool.events = g.events
	g.pool.traces = g.traces
	g.pool.start()
	return g, nil
}

// Close stops the health loop.
func (g *Gateway) Close() {
	g.pool.close()
	g.events.Close()
}

// Events exposes the gateway's own event ledger (tests, bench harness).
func (g *Gateway) Events() *events.Ledger { return g.events }

// Pool exposes the backend pool (tests and the /cluster handler).
func (g *Gateway) Pool() *Pool { return g.pool }

// Handler returns the gateway's REST API handler. The surface mirrors
// the daemon's so faasnapctl and other clients work unchanged against
// either tier.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		g.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /readyz", g.handleReadyz)
	mux.HandleFunc("GET /cluster", g.handleCluster)
	mux.HandleFunc("GET /cluster/slo", g.handleClusterSLO)
	mux.HandleFunc("GET /cluster/profiles", g.handleClusterProfiles)
	mux.HandleFunc("GET /cluster/events", g.handleClusterEvents)
	mux.HandleFunc("GET /functions", g.handleListAll)
	mux.HandleFunc("PUT /functions/{name}", g.handleFanout)
	mux.HandleFunc("POST /functions/{name}/record", g.handleFanout)
	mux.HandleFunc("GET /functions/{name}", g.handleForward)
	mux.HandleFunc("DELETE /functions/{name}", g.handleDeleteAll)
	mux.HandleFunc("POST /functions/{name}/invoke", g.handleForward)
	mux.HandleFunc("POST /functions/{name}/burst", g.handleForward)
	mux.HandleFunc("GET /functions/{name}/faults", g.handleForward)
	mux.HandleFunc("GET /traces/{id}", g.handleTraceFind)
	return g.logRequests(mux)
}

func (g *Gateway) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Scrape and liveness probes arrive every sweep interval from
		// every monitor; logging them would drown real traffic.
		if g.cfg.QuietHTTP || r.URL.Path == "/metrics" || r.URL.Path == "/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		next.ServeHTTP(w, r)
		g.log.Printf("%s %s (%v)", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{"ok": true, "ready_backends": g.readyCount()})
}

// handleReadyz: the gateway is ready when at least one backend is.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	n := g.readyCount()
	if n == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{"ready": false, "reason": "no ready backends"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"ready": true, "ready_backends": n})
}

func (g *Gateway) readyCount() int {
	n := 0
	for _, b := range g.pool.snapshot() {
		if b.Ready() {
			n++
		}
	}
	return n
}

// handleCluster reports the serving topology: every backend's health,
// breaker, and load, plus — with ?fn=<name> — the preference order
// (owner first) the placement ring assigns that function.
func (g *Gateway) handleCluster(w http.ResponseWriter, r *http.Request) {
	backends := make([]BackendStatus, 0)
	for _, b := range g.pool.snapshot() {
		backends = append(backends, b.status())
	}
	merged, _ := g.clusterSLO()
	burning := merged.Burning()
	if burning == nil {
		burning = []string{}
	}
	out := map[string]interface{}{
		"policy":            g.cfg.Policy,
		"replicas":          g.cfg.Replicas,
		"backends":          backends,
		"burning_functions": burning,
	}
	if fn := r.URL.Query().Get("fn"); fn != "" {
		prefs := g.pool.ring.Preference(fn, 0)
		out["function"] = fn
		out["preference"] = prefs
	}
	writeJSON(w, http.StatusOK, out)
}

// nextTraceSC mints a trace context for a request that arrived without
// one, so the daemon's stitched trace carries a gateway-issued id the
// client can look up via GET /traces/{id}.
func (g *Gateway) nextTraceSC() telemetry.SpanContext {
	return telemetry.SpanContext{
		TraceID: fmt.Sprintf("gw%014x", g.traceSeq.Add(1)),
		SpanID:  "0000000000000001",
	}
}

// candidates returns the ordered backends a request for fn should try.
// Sticky policy: the ring owner first, then the remaining backends by
// ascending load, ties broken by ring (standby) order so equally-loaded
// snapshot replicas are preferred. Random policy: a uniform shuffle of
// all backends — the locality-blind baseline.
func (g *Gateway) candidates(fn string) []*Backend {
	prefs := g.pool.preference(fn, 0)
	if len(prefs) <= 1 || g.cfg.Policy == PolicySticky {
		if len(prefs) > 1 {
			// Spillover order: a standby whose admission window was full
			// at the last scrape will certainly shed, so unsaturated
			// backends go first; within each group, least-loaded wins.
			rest := append([]*Backend(nil), prefs[1:]...)
			sort.SliceStable(rest, func(i, j int) bool {
				si, sj := rest[i].saturation() >= 1, rest[j].saturation() >= 1
				if si != sj {
					return !si
				}
				return rest[i].load() < rest[j].load()
			})
			prefs = append(prefs[:1:1], rest...)
		}
		return demoteStale(prefs)
	}
	shuffled := append([]*Backend(nil), prefs...)
	g.rngMu.Lock()
	g.rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	g.rngMu.Unlock()
	return demoteStale(shuffled)
}

// demoteStale keeps a stale backend (anti-entropy repairs in flight)
// usable but last: it rejoined without its acknowledged state, so
// sending sticky traffic there before re-sync finishes would trade
// snapshot locality for guaranteed misses. Order within each group is
// preserved.
func demoteStale(prefs []*Backend) []*Backend {
	sort.SliceStable(prefs, func(i, j int) bool {
		return !prefs[i].Stale() && prefs[j].Stale()
	})
	return prefs
}

// proxyResult is one backend attempt's outcome.
type proxyResult struct {
	status int
	header http.Header
	body   []byte
}

// do forwards one request to one backend, tracking per-backend
// in-flight load and latency. extra headers (e.g. the tenant id the
// daemon's flight recorder attributes profiles to) are copied onto the
// outgoing request.
func (g *Gateway) do(ctx context.Context, b *Backend, method, path string, query string, body []byte, sc telemetry.SpanContext, extra ...http.Header) (proxyResult, error) {
	url := "http://" + b.Addr + path
	if query != "" {
		url += "?" + query
	}
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return proxyResult{}, err
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	for _, h := range extra {
		for k, vs := range h {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
	}
	telemetry.Inject(req.Header, sc)
	b.inflight.Add(1)
	start := time.Now()
	resp, err := g.proxy.Do(req)
	g.reg.Histogram("faasnap_gw_backend_seconds",
		"Wall time of forwarded backend requests, by backend.",
		telemetry.L("backend", b.Addr)).Observe(time.Since(start))
	b.inflight.Add(-1)
	if err != nil {
		return proxyResult{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return proxyResult{}, err
	}
	return proxyResult{status: resp.StatusCode, header: resp.Header, body: raw}, nil
}

func (g *Gateway) countRequest(b *Backend, placement string, status int) {
	g.reg.Counter("faasnap_gw_requests_total",
		"Requests forwarded to backends, by backend, placement, and status class.",
		telemetry.L("backend", b.Addr, "placement", placement, "class", statusClass(status))).Inc()
}

func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return fmt.Sprintf("%dxx", code/100)
}

// handleForward routes one function-scoped request (invoke, burst,
// get, faults) with snapshot-locality-aware placement and bounded
// retry-on-another-backend:
//
//   - transport errors and backend 5xx count against the backend's
//     breaker and move to the next candidate;
//   - 429 honors the backend's shed (no breaker penalty) and tries a
//     less-loaded backend, propagating the largest Retry-After if every
//     candidate sheds;
//   - 404 means this backend does not hold the function — another
//     replica may, so it is a miss, not an error;
//   - deadline expiry anywhere returns 504.
//
// Successful JSON-object responses gain "placement" and "backend"
// fields recording where and how the request landed.
func (g *Gateway) handleForward(w http.ResponseWriter, r *http.Request) {
	fn := r.PathValue("name")
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()
	// Propagate the client's trace context, or mint one, so the
	// daemon's stitched trace carries an id known at this tier.
	sc, ok := telemetry.Extract(r.Header)
	if !ok {
		sc = g.nextTraceSC()
	}
	var fwd http.Header
	if t := r.Header.Get("X-Faasnap-Tenant"); t != "" {
		fwd = http.Header{"X-Faasnap-Tenant": []string{t}}
	}

	cands := g.candidates(fn)
	if len(cands) == 0 {
		writeErr(w, http.StatusServiceUnavailable, "no backends configured")
		return
	}
	owner := g.pool.preference(fn, 1)
	attempts := 0
	sawShed, retryAfter := false, 1
	var lastMiss *proxyResult
	var lastErr error
	for _, b := range cands {
		if attempts >= g.cfg.RetryAttempts {
			break
		}
		if ctx.Err() != nil {
			g.deadlineExceeded(w, ctx.Err())
			return
		}
		if !b.Ready() || b.load() >= g.cfg.MaxPerBackend || !b.breaker.Allow() {
			continue
		}
		placement := PlacementRetry
		if attempts == 0 {
			placement = PlacementSpillover
			if len(owner) > 0 && b == owner[0] {
				placement = PlacementSticky
			}
		}
		attempts++
		res, err := g.do(ctx, b, r.Method, r.URL.Path, r.URL.RawQuery, body, sc, fwd)
		if err != nil {
			if ctx.Err() != nil {
				g.deadlineExceeded(w, ctx.Err())
				return
			}
			b.breaker.Failure()
			g.countRequest(b, placement, 0)
			lastErr = err
			g.log.Printf("backend %s: %s %s failed: %v", b.Addr, r.Method, r.URL.Path, err)
			continue
		}
		g.countRequest(b, placement, res.status)
		switch {
		case res.status == http.StatusTooManyRequests:
			// The backend shed by policy; it is healthy. Spill to a
			// less-loaded backend, remembering its backoff hint.
			b.breaker.Success()
			sawShed = true
			if ra, err := strconv.Atoi(res.header.Get("Retry-After")); err == nil && ra > retryAfter {
				retryAfter = ra
			}
			continue
		case res.status == http.StatusNotFound:
			// Not registered here; a snapshot replica may hold it.
			b.breaker.Success()
			miss := res
			lastMiss = &miss
			continue
		case res.status >= 500 && res.status != http.StatusGatewayTimeout:
			b.breaker.Failure()
			lastErr = fmt.Errorf("backend %s returned %d", b.Addr, res.status)
			continue
		default:
			// 2xx, 4xx client errors, and backend 504s pass through.
			b.breaker.Success()
			g.writeProxied(w, res, b, placement)
			return
		}
	}
	if ctx.Err() != nil {
		g.deadlineExceeded(w, ctx.Err())
		return
	}
	if sawShed {
		g.reg.Counter("faasnap_gw_shed_total",
			"Requests answered 429 because every candidate backend shed.", nil).Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		writeErr(w, http.StatusTooManyRequests, "all candidate backends saturated; retry later")
		return
	}
	if lastMiss != nil {
		g.writeRaw(w, *lastMiss)
		return
	}
	g.reg.Counter("faasnap_gw_unroutable_total",
		"Requests that exhausted every candidate backend.", nil).Inc()
	if lastErr != nil {
		writeErr(w, http.StatusServiceUnavailable, "no backend could serve the request: %v", lastErr)
		return
	}
	writeErr(w, http.StatusServiceUnavailable, "no ready backend for %q", fn)
}

func (g *Gateway) deadlineExceeded(w http.ResponseWriter, err error) {
	g.reg.Counter("faasnap_gw_deadline_exceeded_total",
		"Requests that ran out their gateway deadline.", nil).Inc()
	writeErr(w, http.StatusGatewayTimeout, "deadline exceeded: %v", err)
}

// writeProxied relays a backend response, stamping placement metadata
// into JSON-object bodies and always into response headers.
func (g *Gateway) writeProxied(w http.ResponseWriter, res proxyResult, b *Backend, placement string) {
	w.Header().Set("X-Faasnap-Backend", b.Addr)
	w.Header().Set("X-Faasnap-Placement", placement)
	var obj map[string]interface{}
	if json.Unmarshal(res.body, &obj) == nil && obj != nil {
		obj["backend"] = b.Addr
		obj["placement"] = placement
		if raw, err := json.Marshal(obj); err == nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(res.status)
			_, _ = w.Write(raw)
			return
		}
	}
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

func (g *Gateway) writeRaw(w http.ResponseWriter, res proxyResult) {
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// handleFanout serves PUT /functions/{name} and POST .../record:
// the mutation lands on the function's owner and is replicated to the
// next Replicas standbys in ring order, so spillover and failover
// backends already hold the snapshot state when traffic reaches them.
// The owner's response is returned (first success if the owner is
// down), extended with the list of backends that accepted the change.
func (g *Gateway) handleFanout(w http.ResponseWriter, r *http.Request) {
	fn := r.PathValue("name")
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()
	sc, ok := telemetry.Extract(r.Header)
	if !ok {
		sc = g.nextTraceSC()
	}
	prefs := g.pool.preference(fn, 1+g.cfg.Replicas)
	if len(prefs) == 0 {
		writeErr(w, http.StatusServiceUnavailable, "no backends configured")
		return
	}
	var accepted []string
	var first *proxyResult
	var firstBackend *Backend
	var clientErr *proxyResult
	for _, b := range prefs {
		if ctx.Err() != nil {
			g.deadlineExceeded(w, ctx.Err())
			return
		}
		if !b.Ready() {
			continue
		}
		res, err := g.do(ctx, b, r.Method, r.URL.Path, r.URL.RawQuery, body, sc)
		if err != nil {
			b.breaker.Failure()
			g.log.Printf("fanout %s to %s failed: %v", r.URL.Path, b.Addr, err)
			continue
		}
		g.reg.Counter("faasnap_gw_fanout_total",
			"Fan-out requests (register/record) sent to backends, by backend and status class.",
			telemetry.L("backend", b.Addr, "class", statusClass(res.status))).Inc()
		if res.status/100 == 2 {
			b.breaker.Success()
			accepted = append(accepted, b.Addr)
			if first == nil {
				firstRes := res
				first = &firstRes
				firstBackend = b
			}
			continue
		}
		if res.status >= 500 {
			b.breaker.Failure()
		} else if clientErr == nil {
			// A 4xx is deterministic (bad spec, unknown function):
			// every backend would refuse it the same way.
			b.breaker.Success()
			errRes := res
			clientErr = &errRes
			break
		}
	}
	if first == nil {
		if clientErr != nil {
			g.writeRaw(w, *clientErr)
			return
		}
		if ctx.Err() != nil {
			g.deadlineExceeded(w, ctx.Err())
			return
		}
		writeErr(w, http.StatusServiceUnavailable, "no backend accepted %s %s", r.Method, r.URL.Path)
		return
	}
	placement := PlacementSpillover
	if owner := g.pool.preference(fn, 1); len(owner) > 0 && firstBackend == owner[0] {
		placement = PlacementSticky
	}
	w.Header().Set("X-Faasnap-Backend", firstBackend.Addr)
	w.Header().Set("X-Faasnap-Placement", placement)
	var obj map[string]interface{}
	if json.Unmarshal(first.body, &obj) == nil && obj != nil {
		obj["backend"] = firstBackend.Addr
		obj["placement"] = placement
		obj["replicated_to"] = accepted
		if raw, err := json.Marshal(obj); err == nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(first.status)
			_, _ = w.Write(raw)
			return
		}
	}
	g.writeRaw(w, *first)
}

// handleListAll merges GET /functions across every ready backend,
// deduplicating by name and annotating each entry with the backends
// that hold it.
func (g *Gateway) handleListAll(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()
	merged := make(map[string]map[string]interface{})
	for _, b := range g.pool.snapshot() {
		if !b.Ready() {
			continue
		}
		res, err := g.do(ctx, b, http.MethodGet, "/functions", "", nil, telemetry.SpanContext{})
		if err != nil || res.status != http.StatusOK {
			continue
		}
		var list []map[string]interface{}
		if json.Unmarshal(res.body, &list) != nil {
			continue
		}
		for _, entry := range list {
			name, _ := entry["name"].(string)
			if name == "" {
				continue
			}
			if have, ok := merged[name]; ok {
				have["backends"] = append(have["backends"].([]string), b.Addr)
			} else {
				entry["backends"] = []string{b.Addr}
				merged[name] = entry
			}
		}
	}
	names := make([]string, 0, len(merged))
	for n := range merged {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]map[string]interface{}, 0, len(names))
	for _, n := range names {
		out = append(out, merged[n])
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDeleteAll removes a function everywhere it lives; 204 if any
// backend had it.
func (g *Gateway) handleDeleteAll(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()
	found := false
	for _, b := range g.pool.snapshot() {
		if !b.Ready() {
			continue
		}
		res, err := g.do(ctx, b, http.MethodDelete, r.URL.Path, "", nil, telemetry.SpanContext{})
		if err != nil {
			b.breaker.Failure()
			continue
		}
		b.breaker.Success()
		if res.status/100 == 2 {
			found = true
		}
	}
	if !found {
		writeErr(w, http.StatusNotFound, "function %q not found on any backend", r.PathValue("name"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}
