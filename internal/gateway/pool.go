package gateway

// The backend pool: one entry per configured faasnapd, actively health
// checked. Liveness/readiness comes from each daemon's GET /readyz (a
// backend that answers /healthz but cannot persist snapshots or reach
// its kvstore is drained, not black-holed); load comes from scraping
// the daemon's Prometheus /metrics for its in-flight gauge, combined
// with the gateway's own per-backend in-flight count, which reacts
// faster than the scrape interval.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"faasnap/internal/events"
	"faasnap/internal/obs"
	"faasnap/internal/resilience"
	"faasnap/internal/slo"
	"faasnap/internal/telemetry"
	"faasnap/internal/trace"
)

// Backend is one faasnapd the gateway routes to.
type Backend struct {
	// Addr is the daemon's host:port; it doubles as the backend's
	// identity on the placement ring.
	Addr string

	breaker  *resilience.Breaker
	inflight atomic.Int64 // requests this gateway currently has open

	mu        sync.Mutex
	ready     bool
	lastErr   string
	lastCheck time.Time
	scraped   float64 // daemon-reported in-flight from the last scrape
	admitted  float64 // daemon admission-limiter occupancy
	capacity  float64 // daemon admission-limiter window

	// Observability snapshots from the last sweep, feeding the gateway's
	// /cluster/slo and /cluster/profiles roll-ups. Nil until a sweep has
	// fetched them (or when the daemon predates the endpoints).
	sloRep  *slo.Report
	profSum *obs.Summary

	// manifest is the durable-state summary from the last sweep (nil for
	// stateless daemons); stale marks a backend the last anti-entropy
	// pass found missing acknowledged state — demoted in placement until
	// a pass finds nothing to repair.
	manifest *manifestInfo
	stale    bool
}

// Ready reports the last health sweep's verdict.
func (b *Backend) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ready
}

func (b *Backend) setReady(ready bool, reason string) {
	b.mu.Lock()
	b.ready = ready
	b.lastErr = reason
	b.lastCheck = time.Now()
	b.mu.Unlock()
}

func (b *Backend) setScraped(inflight, admitted, capacity float64) {
	b.mu.Lock()
	b.scraped = inflight
	b.admitted = admitted
	b.capacity = capacity
	b.mu.Unlock()
}

func (b *Backend) setObserved(rep *slo.Report, sum *obs.Summary) {
	b.mu.Lock()
	b.sloRep = rep
	b.profSum = sum
	b.mu.Unlock()
}

func (b *Backend) setManifest(mi *manifestInfo) {
	b.mu.Lock()
	b.manifest = mi
	b.mu.Unlock()
}

// manifestInfo returns the backend's /manifest snapshot from the last
// sweep.
func (b *Backend) manifestInfo() *manifestInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.manifest
}

func (b *Backend) setStale(s bool) {
	b.mu.Lock()
	b.stale = s
	b.mu.Unlock()
}

// Stale reports the last anti-entropy verdict: true while re-sync
// repairs are in flight for this backend.
func (b *Backend) Stale() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stale
}

// sloReport returns the backend's /slo report from the last sweep.
func (b *Backend) sloReport() *slo.Report {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sloRep
}

// profileSummary returns the backend's /profiles?summary=1 aggregation
// from the last sweep.
func (b *Backend) profileSummary() *obs.Summary {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.profSum
}

// saturation is the backend's admission-window occupancy in [0, 1] from
// the last scrape (0 when the daemon predates the admission gauges).
func (b *Backend) saturation() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.capacity <= 0 {
		return 0
	}
	return b.admitted / b.capacity
}

// load is the placement load signal: the gateway's own open requests
// plus the daemon's last-scraped in-flight gauge (which counts load
// arriving from other gateways or direct clients).
func (b *Backend) load() int64 {
	b.mu.Lock()
	scraped := b.scraped
	b.mu.Unlock()
	return b.inflight.Load() + int64(scraped)
}

// BackendStatus is a backend's row in GET /cluster.
type BackendStatus struct {
	Addr            string  `json:"addr"`
	Ready           bool    `json:"ready"`
	Breaker         string  `json:"breaker"`
	InFlightGateway int64   `json:"inflight_gateway"`
	InFlightDaemon  int64   `json:"inflight_daemon"`
	AdmissionUsed   int64   `json:"admission_used"`
	AdmissionMax    int64   `json:"admission_max"`
	Saturation      float64 `json:"saturation"`
	Stale           bool    `json:"stale"`
	ManifestDigest  string  `json:"manifest_digest,omitempty"`
	LastError       string  `json:"last_error,omitempty"`
	LastCheck       string  `json:"last_check,omitempty"`
}

func (b *Backend) status() BackendStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BackendStatus{
		Addr:            b.Addr,
		Ready:           b.ready,
		Breaker:         b.breaker.State().String(),
		InFlightGateway: b.inflight.Load(),
		InFlightDaemon:  int64(b.scraped),
		AdmissionUsed:   int64(b.admitted),
		AdmissionMax:    int64(b.capacity),
		Stale:           b.stale,
		LastError:       b.lastErr,
	}
	if b.manifest != nil {
		st.ManifestDigest = b.manifest.Digest
	}
	if b.capacity > 0 {
		st.Saturation = b.admitted / b.capacity
	}
	if !b.lastCheck.IsZero() {
		st.LastCheck = b.lastCheck.Format(time.RFC3339Nano)
	}
	return st
}

// Pool owns the backend set, the placement ring, and the health loop.
type Pool struct {
	ring     *Ring
	client   *http.Client
	interval time.Duration
	reg      *telemetry.Registry
	// replicas is the gateway's standby count: a function's replica set
	// (the anti-entropy repair scope) is the ring owner + replicas.
	replicas int

	mu       sync.RWMutex
	backends map[string]*Backend

	// events/traces are the gateway's ledger and trace store, wired by
	// New before start; nil in bare-pool tests. repairMu/lastRepairSeq
	// remember each backend's most recent repair event so the converged
	// event a later pass emits can cite it as cause_seq.
	events        *events.Ledger
	traces        *trace.Store
	repairMu      sync.Mutex
	lastRepairSeq map[string]uint64

	stop chan struct{}
	done chan struct{}
}

func newPool(addrs []string, vnodes int, interval time.Duration, breakerThreshold int, breakerCooldown time.Duration, reg *telemetry.Registry) *Pool {
	p := &Pool{
		ring:          NewRing(vnodes),
		client:        &http.Client{Timeout: 2 * time.Second},
		interval:      interval,
		reg:           reg,
		backends:      make(map[string]*Backend),
		lastRepairSeq: make(map[string]uint64),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	for _, addr := range addrs {
		if _, dup := p.backends[addr]; dup {
			continue
		}
		b := &Backend{Addr: addr}
		gauge := reg.Gauge("faasnap_gw_breaker_state",
			"Per-backend circuit-breaker state (0 closed, 1 open, 2 half-open).",
			telemetry.L("backend", addr))
		b.breaker = resilience.NewBreaker(breakerThreshold, breakerCooldown,
			func(s resilience.BreakerState) {
				gauge.Set(float64(s))
				if p.events != nil {
					p.events.Append(events.Event{
						Type:   events.BreakerTransition,
						Fields: map[string]string{"backend": addr, "state": s.String()},
					})
				}
			})
		p.backends[addr] = b
		p.ring.Add(addr)
	}
	return p
}

// start launches the health loop. The first sweep runs synchronously
// so a freshly-built gateway has a verdict for every backend before it
// serves its first request; every sweep is followed by an anti-entropy
// pass so a rejoined-but-stale backend is repaired within one interval
// of coming back.
func (p *Pool) start() {
	sweepHist := p.reg.Histogram("faasnap_gw_sweep_seconds",
		"Wall time of one health-check plus anti-entropy sweep across all backends.", nil)
	sweep := func() {
		t0 := time.Now()
		p.CheckNow()
		p.ResyncNow()
		sweepHist.Observe(time.Since(t0))
	}
	sweep()
	go func() {
		defer close(p.done)
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				sweep()
			}
		}
	}()
}

func (p *Pool) close() {
	close(p.stop)
	<-p.done
}

// CheckNow runs one health + load sweep across all backends,
// concurrently, and returns when every verdict is in.
func (p *Pool) CheckNow() {
	var wg sync.WaitGroup
	for _, b := range p.snapshot() {
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			p.check(b)
		}(b)
	}
	wg.Wait()
}

// check probes one backend: /readyz for the routing verdict, /metrics
// for the daemon's own in-flight load.
func (p *Pool) check(b *Backend) {
	up := p.reg.Gauge("faasnap_gw_backend_up",
		"Backend readiness as seen by the gateway health checker (1 ready).",
		telemetry.L("backend", b.Addr))
	resp, err := p.client.Get("http://" + b.Addr + "/readyz")
	if err != nil {
		b.setReady(false, err.Error())
		up.Set(0)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.setReady(false, fmt.Sprintf("readyz returned %d", resp.StatusCode))
		up.Set(0)
		return
	}
	b.setReady(true, "")
	up.Set(1)

	if mresp, err := p.client.Get("http://" + b.Addr + "/metrics"); err == nil {
		sums := sumPromGauges(io.LimitReader(mresp.Body, 1<<20),
			"faasnap_http_in_flight", "faasnap_admission_inflight", "faasnap_admission_capacity")
		mresp.Body.Close()
		inflight := sums["faasnap_http_in_flight"]
		admitted := sums["faasnap_admission_inflight"]
		capacity := sums["faasnap_admission_capacity"]
		b.setScraped(inflight, admitted, capacity)
		p.reg.Gauge("faasnap_gw_backend_inflight",
			"Daemon-reported in-flight requests from the last /metrics scrape.",
			telemetry.L("backend", b.Addr)).Set(inflight)
		p.reg.Gauge("faasnap_gw_backend_admission_inflight",
			"Daemon admission-limiter occupancy from the last /metrics scrape.",
			telemetry.L("backend", b.Addr)).Set(admitted)
		if capacity > 0 {
			p.reg.Gauge("faasnap_gw_backend_saturation",
				"Backend admission-window occupancy in [0,1] from the last scrape.",
				telemetry.L("backend", b.Addr)).Set(admitted / capacity)
		}
	}

	b.setObserved(p.fetchSLO(b), p.fetchProfiles(b))
	b.setManifest(p.fetchManifest(b))
}

// fetchSLO pulls one backend's GET /slo report and mirrors its burn
// rates into per-backend gateway gauges, so one scrape of the gateway
// shows which backend is burning which function's budget.
func (p *Pool) fetchSLO(b *Backend) *slo.Report {
	resp, err := p.client.Get("http://" + b.Addr + "/slo")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil
	}
	var rep slo.Report
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&rep); err != nil {
		return nil
	}
	for _, f := range rep.Functions {
		p.reg.Gauge("faasnap_gw_backend_attainment",
			"Per-backend SLO attainment from the last /slo sweep.",
			telemetry.L("backend", b.Addr, "function", f.Function)).Set(f.Attainment)
		for _, w := range f.Windows {
			p.reg.Gauge("faasnap_gw_backend_burn_rate",
				"Per-backend error-budget burn rate from the last /slo sweep.",
				telemetry.L("backend", b.Addr, "function", f.Function, "window", w.Window)).Set(w.BurnRate)
		}
	}
	return &rep
}

// fetchProfiles pulls one backend's flight-recorder aggregation.
func (p *Pool) fetchProfiles(b *Backend) *obs.Summary {
	resp, err := p.client.Get("http://" + b.Addr + "/profiles?summary=1")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil
	}
	var sum obs.Summary
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&sum); err != nil {
		return nil
	}
	return &sum
}

// sumPromGauges sums every series of each named metric family in one
// pass over a Prometheus text exposition stream. Parsing is
// deliberately minimal: the gateway only needs a few daemon gauges, not
// a full scrape model.
func sumPromGauges(r io.Reader, names ...string) map[string]float64 {
	sums := make(map[string]float64, len(names))
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		for _, name := range names {
			if !strings.HasPrefix(line, name) {
				continue
			}
			rest := line[len(name):]
			// Series are "name{labels} value" or "name value"; skip
			// other families sharing the prefix (e.g. name_total).
			if len(rest) > 0 && rest[0] != '{' && rest[0] != ' ' {
				continue
			}
			i := strings.LastIndexByte(rest, ' ')
			if i < 0 {
				continue
			}
			if v, err := strconv.ParseFloat(rest[i+1:], 64); err == nil {
				sums[name] += v
			}
			break
		}
	}
	return sums
}

// snapshot returns the backend list in stable (address) order.
func (p *Pool) snapshot() []*Backend {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]*Backend, 0, len(p.backends))
	for _, addr := range p.ring.Members() {
		if b, ok := p.backends[addr]; ok {
			out = append(out, b)
		}
	}
	return out
}

// backend looks up one backend by address.
func (p *Pool) backend(addr string) (*Backend, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	b, ok := p.backends[addr]
	return b, ok
}

// preference maps the ring's member order for key onto live Backend
// structs: element 0 is the sticky owner.
func (p *Pool) preference(key string, n int) []*Backend {
	addrs := p.ring.Preference(key, n)
	out := make([]*Backend, 0, len(addrs))
	for _, a := range addrs {
		if b, ok := p.backend(a); ok {
			out = append(out, b)
		}
	}
	return out
}
