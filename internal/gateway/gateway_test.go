package gateway

// Unit tests against scriptable fake backends: placement decisions
// (sticky, spillover, retry), breaker behavior, 429 shed handling, and
// deadline propagation — no real daemons involved.

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeBackend is a scriptable stand-in for one faasnapd.
type fakeBackend struct {
	srv     *httptest.Server
	addr    string
	invokes atomic.Int64
	// invoke is the handler for POST /functions/{name}/invoke; swap it
	// atomically to change behavior mid-test.
	invoke atomic.Value // func(w http.ResponseWriter, r *http.Request)
	ready  atomic.Bool
	// creates records PUT /functions bodies seen (fan-out tests).
	creates atomic.Int64
	// sloJSON / profJSON script GET /slo and GET /profiles for the
	// observability roll-up tests; unset means 404 (an old daemon).
	sloJSON  atomic.Value // string
	profJSON atomic.Value // string
	// traces is the handler for GET /traces/{id}; unset means 404.
	traces atomic.Value // func(w http.ResponseWriter, r *http.Request)
	// manifestJSON scripts GET /manifest for the anti-entropy tests;
	// unset means 404 (a stateless or pre-manifest daemon).
	manifestJSON atomic.Value // string
	// records / deletes count the re-sync mutations replayed onto this
	// backend.
	records atomic.Int64
	deletes atomic.Int64
}

// serveScripted writes a scripted JSON body, or 404 when unset.
func serveScripted(w http.ResponseWriter, v *atomic.Value) {
	s, ok := v.Load().(string)
	if !ok || s == "" {
		w.WriteHeader(http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, s)
}

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	f := &fakeBackend{}
	f.ready.Store(true)
	f.invoke.Store(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"function":%q,"mode":"faasnap","total_ms":1.5}`, r.PathValue("name"))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !f.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"ready":true}`)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "# TYPE faasnap_http_in_flight gauge\n")
	})
	mux.HandleFunc("POST /functions/{name}/invoke", func(w http.ResponseWriter, r *http.Request) {
		f.invokes.Add(1)
		f.invoke.Load().(func(http.ResponseWriter, *http.Request))(w, r)
	})
	mux.HandleFunc("GET /slo", func(w http.ResponseWriter, r *http.Request) {
		serveScripted(w, &f.sloJSON)
	})
	mux.HandleFunc("GET /profiles", func(w http.ResponseWriter, r *http.Request) {
		serveScripted(w, &f.profJSON)
	})
	mux.HandleFunc("GET /traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		if h, ok := f.traces.Load().(func(http.ResponseWriter, *http.Request)); ok {
			h(w, r)
			return
		}
		w.WriteHeader(http.StatusNotFound)
	})
	mux.HandleFunc("PUT /functions/{name}", func(w http.ResponseWriter, r *http.Request) {
		f.creates.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"name":%q,"vm_state":"Running"}`, r.PathValue("name"))
	})
	mux.HandleFunc("GET /manifest", func(w http.ResponseWriter, r *http.Request) {
		serveScripted(w, &f.manifestJSON)
	})
	mux.HandleFunc("POST /functions/{name}/record", func(w http.ResponseWriter, r *http.Request) {
		f.records.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"function":%q}`, r.PathValue("name"))
	})
	mux.HandleFunc("DELETE /functions/{name}", func(w http.ResponseWriter, r *http.Request) {
		f.deletes.Add(1)
		w.WriteHeader(http.StatusNoContent)
	})
	f.srv = httptest.NewServer(mux)
	f.addr = strings.TrimPrefix(f.srv.URL, "http://")
	t.Cleanup(f.srv.Close)
	return f
}

// newTestGateway builds a gateway over the fakes with a health loop
// that effectively never ticks; tests drive sweeps via CheckNow.
func newTestGateway(t *testing.T, cfg Config, fakes ...*fakeBackend) *Gateway {
	t.Helper()
	for _, f := range fakes {
		cfg.Backends = append(cfg.Backends, f.addr)
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = time.Hour
	}
	cfg.Logger = log.New(io.Discard, "", 0)
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// ownerIndex returns which fake owns fn on g's ring.
func ownerIndex(t *testing.T, g *Gateway, fn string, fakes []*fakeBackend) int {
	t.Helper()
	owner := g.pool.ring.Owner(fn)
	for i, f := range fakes {
		if f.addr == owner {
			return i
		}
	}
	t.Fatalf("owner %q not among fakes", owner)
	return -1
}

type invokeReply struct {
	status    int
	placement string
	backend   string
	body      map[string]interface{}
}

func gwInvoke(t *testing.T, g *Gateway, fn string) invokeReply {
	t.Helper()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	return gwInvokeURL(t, srv.URL, fn)
}

func gwInvokeURL(t *testing.T, base, fn string) invokeReply {
	t.Helper()
	req, err := http.NewRequest("POST", base+"/functions/"+fn+"/invoke", strings.NewReader(`{"mode":"faasnap"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	out := invokeReply{status: resp.StatusCode, placement: resp.Header.Get("X-Faasnap-Placement"), backend: resp.Header.Get("X-Faasnap-Backend")}
	_ = json.Unmarshal(raw, &out.body)
	return out
}

func TestStickyRoutingHitsOwner(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t), newFakeBackend(t)}
	g := newTestGateway(t, Config{}, fakes...)
	oi := ownerIndex(t, g, "hello-world", fakes)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	for i := 0; i < 10; i++ {
		rep := gwInvokeURL(t, srv.URL, "hello-world")
		if rep.status != 200 {
			t.Fatalf("invoke %d = %d", i, rep.status)
		}
		if rep.placement != PlacementSticky {
			t.Fatalf("invoke %d placement = %q, want sticky", i, rep.placement)
		}
		if rep.backend != fakes[oi].addr {
			t.Fatalf("invoke %d backend = %q, want owner %q", i, rep.backend, fakes[oi].addr)
		}
		if rep.body["placement"] != "sticky" || rep.body["backend"] != fakes[oi].addr {
			t.Fatalf("response body missing placement metadata: %v", rep.body)
		}
	}
	if n := fakes[oi].invokes.Load(); n != 10 {
		t.Fatalf("owner served %d invokes, want 10", n)
	}
}

// A drained (unready) owner spills over to the least-loaded remaining
// backend without a failed attempt.
func TestSpilloverWhenOwnerUnready(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t), newFakeBackend(t)}
	g := newTestGateway(t, Config{}, fakes...)
	oi := ownerIndex(t, g, "fn-a", fakes)
	fakes[oi].ready.Store(false)
	g.pool.CheckNow()

	// Load the second-preference backend so least-loaded wins over ring
	// order.
	prefs := g.pool.preference("fn-a", 0)
	prefs[1].inflight.Store(10)
	rep := gwInvoke(t, g, "fn-a")
	if rep.status != 200 || rep.placement != PlacementSpillover {
		t.Fatalf("got %d/%q, want 200/spillover", rep.status, rep.placement)
	}
	if rep.backend != prefs[2].Addr {
		t.Fatalf("spillover chose %q, want least-loaded %q", rep.backend, prefs[2].Addr)
	}
	if fakes[oi].invokes.Load() != 0 {
		t.Fatal("unready owner still received traffic")
	}
}

// A saturated owner (at MaxPerBackend) spills over instead of queueing.
func TestSpilloverWhenOwnerSaturated(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t), newFakeBackend(t)}
	g := newTestGateway(t, Config{MaxPerBackend: 4}, fakes...)
	oi := ownerIndex(t, g, "fn-a", fakes)
	ob, _ := g.pool.backend(fakes[oi].addr)
	ob.inflight.Store(4)
	rep := gwInvoke(t, g, "fn-a")
	if rep.status != 200 || rep.placement != PlacementSpillover {
		t.Fatalf("got %d/%q, want 200/spillover", rep.status, rep.placement)
	}
	if rep.backend == fakes[oi].addr {
		t.Fatal("saturated owner still chosen")
	}
}

// An open breaker skips the owner without spending an attempt on it.
func TestSpilloverWhenBreakerOpen(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t), newFakeBackend(t)}
	g := newTestGateway(t, Config{BreakerThreshold: 3, BreakerCooldown: time.Hour}, fakes...)
	oi := ownerIndex(t, g, "fn-a", fakes)
	ob, _ := g.pool.backend(fakes[oi].addr)
	for i := 0; i < 3; i++ {
		ob.breaker.Failure()
	}
	rep := gwInvoke(t, g, "fn-a")
	if rep.status != 200 || rep.placement != PlacementSpillover {
		t.Fatalf("got %d/%q, want 200/spillover", rep.status, rep.placement)
	}
	if fakes[oi].invokes.Load() != 0 {
		t.Fatal("breaker-open owner still received traffic")
	}
}

// A failing owner costs one attempt, trips its breaker failure count,
// and the request is answered by another backend as a retry.
func TestRetryOnBackendError(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t), newFakeBackend(t)}
	g := newTestGateway(t, Config{}, fakes...)
	oi := ownerIndex(t, g, "fn-a", fakes)
	fakes[oi].invoke.Store(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"error":"boom"}`)
	})
	rep := gwInvoke(t, g, "fn-a")
	if rep.status != 200 || rep.placement != PlacementRetry {
		t.Fatalf("got %d/%q, want 200/retry", rep.status, rep.placement)
	}
	if rep.backend == fakes[oi].addr {
		t.Fatal("failing owner answered the request")
	}
}

// A 404 is a locality miss, not a failure: the request tries the next
// replica and the miss does not count against the breaker.
func TestRetryOnSnapshotMiss(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t), newFakeBackend(t)}
	g := newTestGateway(t, Config{}, fakes...)
	oi := ownerIndex(t, g, "fn-a", fakes)
	fakes[oi].invoke.Store(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"function not registered"}`)
	})
	rep := gwInvoke(t, g, "fn-a")
	if rep.status != 200 || rep.placement != PlacementRetry {
		t.Fatalf("got %d/%q, want 200/retry", rep.status, rep.placement)
	}
	ob, _ := g.pool.backend(fakes[oi].addr)
	if st := ob.breaker.State().String(); st != "closed" {
		t.Fatalf("owner breaker %s after a 404 miss, want closed", st)
	}
}

// When every backend 404s, the client sees the 404, not a gateway
// error.
func TestMissEverywherePassesThrough404(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t)}
	for _, f := range fakes {
		f.invoke.Store(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":"function not registered"}`)
		})
	}
	g := newTestGateway(t, Config{}, fakes...)
	rep := gwInvoke(t, g, "nope")
	if rep.status != 404 {
		t.Fatalf("status = %d, want 404", rep.status)
	}
}

// All backends shedding means the gateway sheds, propagating the
// largest Retry-After hint it saw.
func TestAllBackendsShed(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t), newFakeBackend(t)}
	for i, f := range fakes {
		ra := fmt.Sprintf("%d", i+1)
		f.invoke.Store(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", ra)
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"saturated"}`)
		})
	}
	g := newTestGateway(t, Config{}, fakes...)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/functions/fn-a/invoke", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want the max hint 3", ra)
	}
	// Sheds are backpressure, not failures: no breaker may have
	// tripped.
	for _, f := range fakes {
		b, _ := g.pool.backend(f.addr)
		if st := b.breaker.State().String(); st != "closed" {
			t.Fatalf("breaker %s after sheds, want closed", st)
		}
	}
}

// The gateway deadline covers all attempts; a hung backend turns into
// a 504, not a hung client.
func TestDeadlinePropagation(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t)}
	for _, f := range fakes {
		f.invoke.Store(func(w http.ResponseWriter, r *http.Request) {
			select {
			case <-r.Context().Done():
			case <-time.After(2 * time.Second):
			}
		})
	}
	g := newTestGateway(t, Config{RequestTimeout: 100 * time.Millisecond}, fakes...)
	start := time.Now()
	rep := gwInvoke(t, g, "fn-a")
	if rep.status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", rep.status)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("deadline took %v to fire, want ~100ms", el)
	}
}

// Registration fans out to the owner plus Replicas standbys, in ring
// order, and reports who accepted it.
func TestCreateFanout(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t), newFakeBackend(t)}
	g := newTestGateway(t, Config{Replicas: 1}, fakes...)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	req, _ := http.NewRequest("PUT", srv.URL+"/functions/hello-world", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	reps, _ := body["replicated_to"].([]interface{})
	if len(reps) != 2 {
		t.Fatalf("replicated_to = %v, want owner + 1 standby", body["replicated_to"])
	}
	prefs := g.pool.ring.Preference("hello-world", 2)
	if reps[0] != prefs[0] || reps[1] != prefs[1] {
		t.Fatalf("replicated_to = %v, want ring order %v", reps, prefs)
	}
	total := fakes[0].creates.Load() + fakes[1].creates.Load() + fakes[2].creates.Load()
	if total != 2 {
		t.Fatalf("%d backends saw the create, want 2", total)
	}
}

// GET /cluster reports topology and, with ?fn=, placement preference.
func TestClusterEndpoint(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t)}
	fakes[1].ready.Store(false)
	g := newTestGateway(t, Config{}, fakes...)
	g.pool.CheckNow()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/cluster?fn=hello-world")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Policy   string          `json:"policy"`
		Backends []BackendStatus `json:"backends"`
		Pref     []string        `json:"preference"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Policy != PolicySticky || len(body.Backends) != 2 {
		t.Fatalf("cluster = %+v", body)
	}
	readyCount := 0
	for _, b := range body.Backends {
		if b.Ready {
			readyCount++
		}
	}
	if readyCount != 1 {
		t.Fatalf("ready backends = %d, want 1", readyCount)
	}
	if len(body.Pref) != 2 || body.Pref[0] != g.pool.ring.Owner("hello-world") {
		t.Fatalf("preference = %v", body.Pref)
	}
}

func TestSumPromGauges(t *testing.T) {
	text := `# HELP faasnap_http_in_flight Requests currently being served.
# TYPE faasnap_http_in_flight gauge
faasnap_http_in_flight{route="POST /functions/{name}/invoke"} 3
faasnap_http_in_flight{route="POST /functions/{name}/burst"} 2
faasnap_http_in_flight_other{route="x"} 100
faasnap_http_requests_total{route="y"} 50
faasnap_admission_inflight 17
faasnap_admission_capacity 256
`
	sums := sumPromGauges(strings.NewReader(text),
		"faasnap_http_in_flight", "faasnap_admission_inflight", "faasnap_admission_capacity")
	if got := sums["faasnap_http_in_flight"]; got != 5 {
		t.Fatalf("http_in_flight sum = %v, want 5", got)
	}
	if got := sums["faasnap_admission_inflight"]; got != 17 {
		t.Fatalf("admission_inflight sum = %v, want 17", got)
	}
	if got := sums["faasnap_admission_capacity"]; got != 256 {
		t.Fatalf("admission_capacity sum = %v, want 256", got)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no backends succeeded")
	}
	if _, err := New(Config{Backends: []string{"h:1"}, Policy: "bogus", Logger: log.New(io.Discard, "", 0)}); err == nil {
		t.Fatal("New with bogus policy succeeded")
	}
}
