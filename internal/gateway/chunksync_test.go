package gateway

// Anti-entropy chunk-sync over real daemons: a standby that rejoined
// with a wiped disk is repaired by pulling the winner's chunk map and
// only the chunks it is missing — the action is counted as "chunks"
// and the transferred bytes are measurably smaller than the snapshot.

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"faasnap/internal/daemon"
)

func startRealDaemon(t *testing.T) (*daemon.Daemon, string) {
	d, _, addr := startRealDaemonDir(t)
	return d, addr
}

// startRealDaemonDir also returns the daemon's state directory, for
// tests that damage durable state out-of-band.
func startRealDaemonDir(t *testing.T) (*daemon.Daemon, string, string) {
	t.Helper()
	dir := t.TempDir()
	d, err := daemon.New(daemon.Config{
		StateDir: dir,
		Logger:   log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() { srv.Close(); d.Close() })
	return d, dir, srv.Listener.Addr().String()
}

func daemonJSON(t *testing.T, method, url string, body, out interface{}) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	}
	return resp.StatusCode
}

func chunkSyncSpec(name string) map[string]interface{} {
	return map[string]interface{}{
		"name": name, "boot_mb": 16, "stable_pages": 128,
		"chunk_mean": 4, "retain_frac": 0.5, "base_ms": 1, "per_kb_us": 2,
		"init_ms": 5,
		"input_a": map[string]interface{}{"bytes": 4096, "data_pages": 8},
		"input_b": map[string]interface{}{"bytes": 16384, "data_pages": 24},
	}
}

// metricValue greps one sample line out of the registry's Prometheus
// exposition; -1 when absent.
func metricValue(t *testing.T, g *Gateway, line string) float64 {
	t.Helper()
	var buf bytes.Buffer
	g.reg.WritePrometheus(&buf)
	for _, l := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(l, line+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(l, line+" "), 64)
			if err != nil {
				t.Fatalf("parse metric %q: %v", l, err)
			}
			return v
		}
	}
	return -1
}

func TestAntiEntropyChunkSync(t *testing.T) {
	_, addrA := startRealDaemon(t)
	_, addrB := startRealDaemon(t)
	g := newTestGateway(t, Config{Replicas: 1, Backends: []string{addrA, addrB}})

	// Record on A only; B is the wiped-disk standby. With two backends
	// and one replica, both are in every function's replica set.
	const fn = "chunksync-alpha"
	base := "http://" + addrA
	if st := daemonJSON(t, "PUT", base+"/functions/"+fn, chunkSyncSpec(fn), nil); st != http.StatusOK {
		t.Fatalf("register on A = %d", st)
	}
	if st := daemonJSON(t, "POST", base+"/functions/"+fn+"/record",
		map[string]string{"input": "A"}, nil); st != http.StatusOK {
		t.Fatalf("record on A = %d", st)
	}
	var cm struct {
		TotalBytes int64 `json:"total_bytes"`
		LSBytes    int64 `json:"ls_bytes"`
	}
	daemonJSON(t, "GET", base+"/functions/"+fn+"/chunkmap?summary=1", nil, &cm)
	if cm.TotalBytes == 0 || cm.LSBytes >= cm.TotalBytes {
		t.Fatalf("chunk map on A: %+v", cm)
	}

	g.pool.CheckNow()
	if n := g.pool.ResyncNow(); n != 2 {
		t.Fatalf("resync actions = %d, want 2 (register + chunk-sync)", n)
	}

	// The repair rode the chunk plane, not record replay.
	if v := metricValue(t, g, `faasnap_gw_resync_total{action="chunks",backend="`+addrB+`"}`); v != 1 {
		t.Fatalf(`resync action "chunks" = %v, want 1`, v)
	}
	if v := metricValue(t, g, `faasnap_gw_resync_total{action="record",backend="`+addrB+`"}`); v > 0 {
		t.Fatalf("repair fell back to record replay (%v)", v)
	}
	moved := metricValue(t, g, `faasnap_gw_resync_chunk_bytes_total{backend="`+addrB+`"}`)
	// Only the loading set moves eagerly: the transfer must be real but
	// measurably smaller than the whole snapshot's chunk payload.
	if moved <= 0 || int64(moved) >= cm.TotalBytes {
		t.Fatalf("chunk-sync moved %v bytes of a %d-byte snapshot; want 0 < moved < total", moved, cm.TotalBytes)
	}

	// B serves the function it never recorded.
	var info struct {
		HasSnapshot bool `json:"has_snapshot"`
		Chunks      int  `json:"chunks"`
	}
	if st := daemonJSON(t, "GET", "http://"+addrB+"/functions/"+fn, nil, &info); st != http.StatusOK || !info.HasSnapshot || info.Chunks == 0 {
		t.Fatalf("standby after chunk-sync: status=%d info=%+v", st, info)
	}
	if st := daemonJSON(t, "POST", "http://"+addrB+"/functions/"+fn+"/invoke",
		map[string]string{"mode": "faasnap", "input": "B"}, nil); st != http.StatusOK {
		t.Fatalf("invoke on standby = %d", st)
	}

	// Wait for B's lazy tail, then repair a sibling function from the
	// same base image: most chunks are already on B, so the second sync
	// moves far fewer bytes than the first.
	waitCASDrained(t, "http://"+addrB)
	const sibling = "chunksync-beta"
	if st := daemonJSON(t, "PUT", base+"/functions/"+sibling, chunkSyncSpec(sibling), nil); st != http.StatusOK {
		t.Fatalf("register sibling on A = %d", st)
	}
	if st := daemonJSON(t, "POST", base+"/functions/"+sibling+"/record",
		map[string]string{"input": "A"}, nil); st != http.StatusOK {
		t.Fatalf("record sibling on A = %d", st)
	}
	var cmSib struct {
		TotalBytes int64 `json:"total_bytes"`
	}
	daemonJSON(t, "GET", base+"/functions/"+sibling+"/chunkmap?summary=1", nil, &cmSib)
	g.pool.CheckNow()
	if n := g.pool.ResyncNow(); n != 2 {
		t.Fatalf("sibling resync actions = %d, want 2", n)
	}
	movedBoth := metricValue(t, g, `faasnap_gw_resync_chunk_bytes_total{backend="`+addrB+`"}`)
	delta := movedBoth - moved
	if delta <= 0 || int64(delta)*2 >= cmSib.TotalBytes {
		t.Fatalf("sibling sync moved %v of %d bytes; want a fraction via shared chunks", delta, cmSib.TotalBytes)
	}
	// After the lazy tails drain, the standby's store holds both
	// functions with the base image stored once.
	waitCASDrained(t, "http://"+addrB)
	var cas struct {
		DedupRatio float64 `json:"dedup_ratio"`
	}
	daemonJSON(t, "GET", "http://"+addrB+"/cas", nil, &cas)
	if cas.DedupRatio <= 0.25 {
		t.Fatalf("standby dedup ratio = %v after syncing two shared-base functions", cas.DedupRatio)
	}

	// Converged: the next pass is a no-op.
	g.pool.CheckNow()
	if n := g.pool.ResyncNow(); n != 0 {
		t.Fatalf("converged pass issued %d actions", n)
	}
}

// TestAntiEntropyRepairsMissingLazyChunks: a backend that has the
// snapshot but lost chunk content (a lazy tail its background fetcher
// abandoned, simulated here by deleting a chunk file out-of-band)
// reports the deficit as chunks_missing in GET /manifest, and the next
// anti-entropy pass repairs it with an eager chunk sync — after which
// the backend serves the digest to peers again and the sweep is a
// no-op.
func TestAntiEntropyRepairsMissingLazyChunks(t *testing.T) {
	_, addrA := startRealDaemon(t)
	_, dirB, addrB := startRealDaemonDir(t)
	g := newTestGateway(t, Config{Replicas: 1, Backends: []string{addrA, addrB}})

	const fn = "chunkrepair-alpha"
	base := "http://" + addrA
	if st := daemonJSON(t, "PUT", base+"/functions/"+fn, chunkSyncSpec(fn), nil); st != http.StatusOK {
		t.Fatalf("register on A = %d", st)
	}
	if st := daemonJSON(t, "POST", base+"/functions/"+fn+"/record",
		map[string]string{"input": "A"}, nil); st != http.StatusOK {
		t.Fatalf("record on A = %d", st)
	}
	g.pool.CheckNow()
	if n := g.pool.ResyncNow(); n != 2 {
		t.Fatalf("initial resync actions = %d, want 2 (register + chunk-sync)", n)
	}
	waitCASDrained(t, "http://"+addrB)

	// Drop one non-loading-set chunk from B's local tier, as a failed
	// lazy fetch would have left it.
	var cmFull struct {
		Chunks []struct {
			Digest     string `json:"digest"`
			LoadingSet bool   `json:"loading_set"`
		} `json:"chunks"`
	}
	daemonJSON(t, "GET", "http://"+addrB+"/functions/"+fn+"/chunkmap", nil, &cmFull)
	victim := ""
	for _, c := range cmFull.Chunks {
		if !c.LoadingSet {
			victim = c.Digest
			break
		}
	}
	if victim == "" {
		t.Fatal("chunk map has no lazy chunks")
	}
	if err := os.Remove(filepath.Join(dirB, "cas", "chunks", victim[:2], victim)); err != nil {
		t.Fatalf("remove chunk file: %v", err)
	}
	if st := daemonJSON(t, "GET", "http://"+addrB+"/chunks/"+victim, nil, nil); st != http.StatusNotFound {
		t.Fatalf("deleted chunk served with %d", st)
	}

	// The deficit is visible in B's manifest.
	missing := func(addr string) int {
		var mi struct {
			Functions []struct {
				Name          string `json:"name"`
				ChunksMissing int    `json:"chunks_missing"`
			} `json:"functions"`
		}
		daemonJSON(t, "GET", "http://"+addr+"/manifest", nil, &mi)
		for _, e := range mi.Functions {
			if e.Name == fn {
				return e.ChunksMissing
			}
		}
		return -1
	}
	if n := missing(addrB); n != 1 {
		t.Fatalf("chunks_missing on B = %d, want 1", n)
	}

	// One repair action: an eager chunk sync that restores the deficit.
	g.pool.CheckNow()
	if n := g.pool.ResyncNow(); n != 1 {
		t.Fatalf("repair pass actions = %d, want 1", n)
	}
	if v := metricValue(t, g, `faasnap_gw_resync_total{action="chunks",backend="`+addrB+`"}`); v != 2 {
		t.Fatalf(`resync action "chunks" = %v, want 2 (initial sync + repair)`, v)
	}
	if n := missing(addrB); n != 0 {
		t.Fatalf("chunks_missing on B after repair = %d, want 0", n)
	}
	if st := daemonJSON(t, "GET", "http://"+addrB+"/chunks/"+victim, nil, nil); st != http.StatusOK {
		t.Fatalf("repaired chunk served with %d", st)
	}

	// Converged: the next pass is a no-op.
	g.pool.CheckNow()
	if n := g.pool.ResyncNow(); n != 0 {
		t.Fatalf("converged pass issued %d actions", n)
	}
}

// waitCASDrained polls a daemon's /cas until its background lazy
// fetcher owes nothing.
func waitCASDrained(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var cs struct {
			LazyPendingChunks int64 `json:"lazy_pending_chunks"`
		}
		daemonJSON(t, "GET", base+"/cas", nil, &cs)
		if cs.LazyPendingChunks == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("lazy chunk fetch never drained on %s", base)
}
