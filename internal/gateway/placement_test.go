package gateway

import (
	"fmt"
	"testing"
)

func ringOf(members ...string) *Ring {
	r := NewRing(0)
	for _, m := range members {
		r.Add(m)
	}
	return r
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("fn-%d", i)
	}
	return out
}

// Ownership must not depend on the order backends were configured in:
// two gateways given the same backend set in different orders have to
// agree on every function's owner.
func TestRingInsertionOrderIrrelevant(t *testing.T) {
	a := ringOf("h1:1", "h2:1", "h3:1", "h4:1")
	b := ringOf("h3:1", "h1:1", "h4:1", "h2:1")
	for _, k := range keys(200) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner(%s) differs by insertion order: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
}

// Removing one backend may only move the keys it owned; every other
// function keeps its snapshot locality.
func TestRingStabilityUnderRemove(t *testing.T) {
	r := ringOf("h1:1", "h2:1", "h3:1", "h4:1")
	before := make(map[string]string)
	for _, k := range keys(300) {
		before[k] = r.Owner(k)
	}
	r.Remove("h2:1")
	moved := 0
	for k, owner := range before {
		now := r.Owner(k)
		if owner != "h2:1" {
			if now != owner {
				t.Fatalf("key %s moved %s -> %s though its owner stayed", k, owner, now)
			}
			continue
		}
		if now == "h2:1" {
			t.Fatalf("key %s still owned by removed backend", k)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("removed backend owned no keys; vnode spread is broken")
	}
}

// Adding a backend may only move keys TO the new backend, and only a
// roughly proportional share of them.
func TestRingStabilityUnderAdd(t *testing.T) {
	r := ringOf("h1:1", "h2:1", "h3:1")
	before := make(map[string]string)
	ks := keys(300)
	for _, k := range ks {
		before[k] = r.Owner(k)
	}
	r.Add("h4:1")
	moved := 0
	for _, k := range ks {
		now := r.Owner(k)
		if now != before[k] {
			if now != "h4:1" {
				t.Fatalf("key %s moved %s -> %s, not to the new backend", k, before[k], now)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new backend")
	}
	if frac := float64(moved) / float64(len(ks)); frac > 0.5 {
		t.Fatalf("adding 1 of 4 backends moved %.0f%% of keys, want roughly 25%%", frac*100)
	}
}

// Preference returns distinct members, owner first, and the standby
// order is a stable function of the key.
func TestRingPreference(t *testing.T) {
	r := ringOf("h1:1", "h2:1", "h3:1")
	for _, k := range keys(50) {
		p := r.Preference(k, 0)
		if len(p) != 3 {
			t.Fatalf("preference(%s) = %v, want 3 distinct members", k, p)
		}
		seen := map[string]bool{}
		for _, m := range p {
			if seen[m] {
				t.Fatalf("preference(%s) repeats %s", k, m)
			}
			seen[m] = true
		}
		if p[0] != r.Owner(k) {
			t.Fatalf("preference(%s)[0] = %s, owner = %s", k, p[0], r.Owner(k))
		}
		if got := r.Preference(k, 2); len(got) != 2 || got[0] != p[0] || got[1] != p[1] {
			t.Fatalf("preference(%s, 2) = %v, want prefix of %v", k, got, p)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(8)
	if got := r.Preference("fn", 0); got != nil {
		t.Fatalf("empty ring preference = %v, want nil", got)
	}
	if r.Owner("fn") != "" {
		t.Fatal("empty ring has an owner")
	}
	r.Add("only:1")
	if r.Owner("fn") != "only:1" {
		t.Fatal("single-member ring must own everything")
	}
	r.Remove("missing:1") // no-op
	if r.Size() != 1 {
		t.Fatalf("size = %d, want 1", r.Size())
	}
}
