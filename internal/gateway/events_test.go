package gateway

// The gateway half of the event-ledger plane, tested over real
// daemons: the merged /cluster/events view, the repair→deficit
// causality chain that resolves across ledgers, the restore waterfall
// a chunk sync leaves behind, and a lint pass over the gateway's own
// scrape surface.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"faasnap/internal/events"
	"faasnap/internal/trace"
)

// gwScrape returns the gateway registry's full Prometheus exposition.
func gwScrape(g *Gateway) string {
	var buf bytes.Buffer
	g.reg.WritePrometheus(&buf)
	return buf.String()
}

// TestGatewayMetricsLint mirrors the daemon's scrape lint: after real
// traffic and a sweep, every family the gateway exposes must be
// faasnap_gw_-prefixed snake_case with HELP and TYPE lines.
func TestGatewayMetricsLint(t *testing.T) {
	f1, f2 := newFakeBackend(t), newFakeBackend(t)
	g := newTestGateway(t, Config{}, f1, f2)
	gwInvoke(t, g, "lint-fn")
	g.pool.CheckNow()
	g.pool.ResyncNow()

	out := gwScrape(g)
	nameRe := regexp.MustCompile(`^faasnap_gw_[a-z0-9_]+$`)
	helped := map[string]bool{}
	typed := map[string]bool{}
	var families []string
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || strings.TrimSpace(parts[1]) == "" {
				t.Errorf("HELP line without text: %q", line)
			}
			helped[parts[0]] = true
			families = append(families, parts[0])
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			typed[parts[0]] = true
		case line == "" || strings.HasPrefix(line, "#"):
		default:
			name := line
			if i := strings.IndexAny(name, "{ "); i >= 0 {
				name = name[:i]
			}
			base := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if fam := strings.TrimSuffix(name, suffix); fam != name && helped[fam] {
					base = fam
					break
				}
			}
			if !helped[base] {
				t.Errorf("series %q has no HELP for family %q", name, base)
			}
		}
	}
	if len(families) == 0 {
		t.Fatal("gateway scrape exposed no families")
	}
	for _, fam := range families {
		if !nameRe.MatchString(fam) {
			t.Errorf("family %q is not faasnap_gw_-prefixed snake_case", fam)
		}
		if !typed[fam] {
			t.Errorf("family %q has HELP but no TYPE", fam)
		}
	}
}

// TestGatewayGoldenScrapeFamilies pins the gateway scrape's load-
// bearing families, the sweep histogram included: dashboards key on
// these exact names.
func TestGatewayGoldenScrapeFamilies(t *testing.T) {
	f1, f2 := newFakeBackend(t), newFakeBackend(t)
	g := newTestGateway(t, Config{}, f1, f2)
	gwInvoke(t, g, "golden-fn")

	out := gwScrape(g)
	for _, want := range []string{
		"# TYPE faasnap_gw_sweep_seconds histogram",
		// newTestGateway's health loop never ticks, so the only sweep is
		// the synchronous one inside start.
		"faasnap_gw_sweep_seconds_count 1",
		"# TYPE faasnap_gw_breaker_state gauge",
		"# TYPE faasnap_gw_backend_up gauge",
		"# TYPE faasnap_gw_requests_total counter",
		"# TYPE faasnap_gw_backend_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("gateway scrape missing %q", want)
		}
	}
}

// fetchSpans resolves a trace id through the gateway's fan-out lookup,
// returning nil when no backend holds it.
func fetchSpans(t *testing.T, base, id string) []*trace.Span {
	t.Helper()
	resp, err := http.Get(base + "/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var spans []*trace.Span
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatalf("bad trace body: %v", err)
	}
	return spans
}

// waitWaterfall polls the gateway's trace lookup until the rendered
// waterfall contains every wanted substring (the lazy tail lands
// asynchronously after the sync reply) and returns the rendering.
func waitWaterfall(t *testing.T, base, id string, wants ...string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var out string
	for time.Now().Before(deadline) {
		if spans := fetchSpans(t, base, id); len(spans) > 0 {
			out = trace.RenderWaterfall(spans)
			ok := true
			for _, w := range wants {
				if !strings.Contains(out, w) {
					ok = false
					break
				}
			}
			if ok {
				return out
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("waterfall for %s never contained %v; last render:\n%s", id, wants, out)
	return ""
}

// TestEventsSmoke is the daemon + gateway ledger round-trip the
// events-smoke make target runs: a repair sweep over real daemons must
// land in both ledgers, merge with origins on /cluster/events, and
// leave a restore trace the waterfall renderer can draw.
func TestEventsSmoke(t *testing.T) {
	_, addrA := startRealDaemon(t)
	_, addrB := startRealDaemon(t)
	g := newTestGateway(t, Config{Replicas: 1, Backends: []string{addrA, addrB}})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	const fn = "events-smoke"
	base := "http://" + addrA
	if st := daemonJSON(t, "PUT", base+"/functions/"+fn, chunkSyncSpec(fn), nil); st != http.StatusOK {
		t.Fatalf("register on A = %d", st)
	}
	if st := daemonJSON(t, "POST", base+"/functions/"+fn+"/record",
		map[string]string{"input": "A"}, nil); st != http.StatusOK {
		t.Fatalf("record on A = %d", st)
	}
	g.pool.CheckNow()
	if n := g.pool.ResyncNow(); n != 2 {
		t.Fatalf("resync actions = %d, want 2 (register + chunk-sync)", n)
	}

	// Daemon ledger round-trip: each daemon recorded at least its
	// recovery replay.
	var dr struct {
		Events  []events.Event `json:"events"`
		LastSeq uint64         `json:"last_seq"`
	}
	if st := daemonJSON(t, "GET", base+"/events", nil, &dr); st != http.StatusOK || dr.LastSeq == 0 {
		t.Fatalf("daemon /events: status=%d last_seq=%d", st, dr.LastSeq)
	}

	// Gateway merged view: gateway-origin repair events interleaved with
	// both backends' ledgers.
	var cl struct {
		Events []events.Event `json:"events"`
	}
	if st := daemonJSON(t, "GET", srv.URL+"/cluster/events", nil, &cl); st != http.StatusOK {
		t.Fatalf("GET /cluster/events = %d", st)
	}
	origins := map[string]bool{}
	var repair *events.Event
	for i := range cl.Events {
		origins[cl.Events[i].Origin] = true
		if cl.Events[i].Type == events.Repair && cl.Events[i].Fields["action"] == "chunks" {
			repair = &cl.Events[i]
		}
	}
	for _, o := range []string{"gateway", addrA, addrB} {
		if !origins[o] {
			t.Fatalf("merged ledger missing origin %q (have %v)", o, origins)
		}
	}
	if repair == nil {
		t.Fatal("merged ledger has no chunk-sync repair event")
	}
	if repair.TraceID == "" {
		t.Fatal("repair event carries no trace id")
	}

	// The repair's restore trace resolves through the gateway fan-out
	// and renders as a waterfall: decode, tier-labelled eager fetch
	// groups, commit, lazy tail.
	waitCASDrained(t, "http://"+addrB)
	wf := waitWaterfall(t, srv.URL, repair.TraceID,
		"chunk-sync", "snapfile-decode", "eager-fetch", "tier=", "commit", "lazy-tail")
	if !strings.Contains(wf, "trace "+repair.TraceID) {
		t.Fatalf("waterfall header missing trace id:\n%s", wf)
	}
}

// TestRepairCausalityChain is the 3-daemon acceptance test: a deleted
// chunk produces a manifest_deficit event on the damaged daemon, the
// gateway's repair event cites it via (cause_seq, cause_origin), the
// repair's trace resolves through the gateway, and the converged event
// closes the chain by citing the repair.
func TestRepairCausalityChain(t *testing.T) {
	_, addrA := startRealDaemon(t)
	_, dirB, addrB := startRealDaemonDir(t)
	_, addrC := startRealDaemon(t)
	g := newTestGateway(t, Config{Replicas: 2, Backends: []string{addrA, addrB, addrC}})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	const fn = "causality-alpha"
	base := "http://" + addrA
	if st := daemonJSON(t, "PUT", base+"/functions/"+fn, chunkSyncSpec(fn), nil); st != http.StatusOK {
		t.Fatalf("register on A = %d", st)
	}
	if st := daemonJSON(t, "POST", base+"/functions/"+fn+"/record",
		map[string]string{"input": "A"}, nil); st != http.StatusOK {
		t.Fatalf("record on A = %d", st)
	}
	g.pool.CheckNow()
	if n := g.pool.ResyncNow(); n != 4 {
		t.Fatalf("initial resync actions = %d, want 4 (register + chunk-sync on B and C)", n)
	}
	waitCASDrained(t, "http://"+addrB)
	waitCASDrained(t, "http://"+addrC)

	// The wiped-replica sync left a restore waterfall: per-group eager
	// fetches with tier labels plus the asynchronous lazy tail.
	var initial *events.Event
	for _, e := range g.Events().Since(0, events.Repair, fn) {
		e := e
		if e.Fields["action"] == "chunks" && e.Fields["backend"] == addrB {
			initial = &e
		}
	}
	if initial == nil || initial.TraceID == "" {
		t.Fatalf("no traced chunk-sync repair for B in gateway ledger (got %+v)", initial)
	}
	waitWaterfall(t, srv.URL, initial.TraceID,
		"chunk-sync", "snapfile-decode", "eager-fetch", "tier=", "commit", "lazy-tail")

	// Damage B: drop one non-loading-set chunk out-of-band.
	var cmFull struct {
		Chunks []struct {
			Digest     string `json:"digest"`
			LoadingSet bool   `json:"loading_set"`
		} `json:"chunks"`
	}
	daemonJSON(t, "GET", "http://"+addrB+"/functions/"+fn+"/chunkmap", nil, &cmFull)
	victim := ""
	for _, c := range cmFull.Chunks {
		if !c.LoadingSet {
			victim = c.Digest
			break
		}
	}
	if victim == "" {
		t.Fatal("chunk map has no lazy chunks")
	}
	if err := os.Remove(filepath.Join(dirB, "cas", "chunks", victim[:2], victim)); err != nil {
		t.Fatalf("remove chunk file: %v", err)
	}

	// The sweep's manifest fetch makes B announce the deficit, and the
	// repair pass issues exactly one eager chunk sync.
	g.pool.CheckNow()
	if n := g.pool.ResyncNow(); n != 1 {
		t.Fatalf("repair pass actions = %d, want 1", n)
	}

	var deficits struct {
		Events []events.Event `json:"events"`
	}
	daemonJSON(t, "GET", "http://"+addrB+"/events?type=manifest_deficit&function="+fn, nil, &deficits)
	if len(deficits.Events) != 1 {
		t.Fatalf("deficit events on B = %d, want 1", len(deficits.Events))
	}
	deficit := deficits.Events[0]
	if deficit.Fields["chunks_missing"] != "1" {
		t.Fatalf("deficit event = %+v, want chunks_missing=1", deficit)
	}

	// The gateway's repair event cites the deficit across ledgers.
	var repair *events.Event
	for _, e := range g.Events().Since(0, events.Repair, fn) {
		e := e
		if e.Fields["action"] == "chunks_eager" {
			repair = &e
		}
	}
	if repair == nil {
		t.Fatal("no chunks_eager repair event in gateway ledger")
	}
	if repair.CauseSeq != deficit.Seq || repair.CauseOrigin != addrB {
		t.Fatalf("repair cause = (%d, %q), want (%d, %q)",
			repair.CauseSeq, repair.CauseOrigin, deficit.Seq, addrB)
	}
	if repair.TraceID == "" {
		t.Fatal("repair event carries no trace id")
	}

	// cause_seq resolves against the named origin's ledger: asking B for
	// events after cause_seq-1 returns the deficit event first.
	var resolved struct {
		Events []events.Event `json:"events"`
	}
	daemonJSON(t, "GET", "http://"+addrB+"/events?since_seq="+
		strconv.FormatUint(repair.CauseSeq-1, 10)+"&type=manifest_deficit", nil, &resolved)
	if len(resolved.Events) == 0 || resolved.Events[0].Seq != repair.CauseSeq {
		t.Fatalf("cause_seq %d did not resolve on %s: %+v", repair.CauseSeq, addrB, resolved.Events)
	}

	// The eager repair's trace resolves through the gateway fan-out with
	// tier-labelled eager fetches.
	waitWaterfall(t, srv.URL, repair.TraceID, "chunk-sync", "eager-fetch", "tier=")

	// Converged: the next clean pass closes the chain, citing the
	// repair event in the gateway's own ledger.
	g.pool.CheckNow()
	if n := g.pool.ResyncNow(); n != 0 {
		t.Fatalf("converged pass issued %d actions", n)
	}
	var converged *events.Event
	for _, e := range g.Events().Since(0, events.Converged, "") {
		e := e
		if e.Fields["backend"] == addrB {
			converged = &e
		}
	}
	if converged == nil {
		t.Fatal("no converged event for B in gateway ledger")
	}
	if converged.CauseSeq != repair.Seq || converged.CauseOrigin != "gateway" {
		t.Fatalf("converged cause = (%d, %q), want (%d, \"gateway\")",
			converged.CauseSeq, converged.CauseOrigin, repair.Seq)
	}

	// The merged cluster view shows the whole chain with origins.
	var cl struct {
		Events []events.Event `json:"events"`
	}
	daemonJSON(t, "GET", srv.URL+"/cluster/events", nil, &cl)
	seen := map[string]bool{}
	for _, e := range cl.Events {
		switch {
		case e.Type == events.ManifestDeficit && e.Origin == addrB && e.Seq == deficit.Seq:
			seen["deficit"] = true
		case e.Type == events.Repair && e.Origin == "gateway" && e.Seq == repair.Seq:
			seen["repair"] = true
		case e.Type == events.Converged && e.Origin == "gateway" && e.Seq == converged.Seq:
			seen["converged"] = true
		}
	}
	for _, k := range []string{"deficit", "repair", "converged"} {
		if !seen[k] {
			t.Errorf("merged /cluster/events missing the %s link (have %v)", k, seen)
		}
	}
}
