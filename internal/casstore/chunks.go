package casstore

// Chunking: cutting a recorded snapshot's memory content into the
// fixed-size, page-aligned extents the store addresses.
//
// The simulator's memory files track which pages are non-zero, not
// their bytes, so chunk payloads are modeled content, generated
// deterministically from page identity:
//
//   - pages inside the boot/runtime image (below the spec's BootPages)
//     derive from the *base-image key* — the guest kernel and runtime
//     bytes every function built on that image shares. Two functions
//     recorded from the same base produce bit-identical boot chunks,
//     which is exactly the cross-function dedup real CAS snapshot
//     stores get from shared layers;
//   - every other page derives from the function's own identity, so
//     private heap/data pages never falsely collide.
//
// The generated pages are internally repetitive (a 1 KiB pattern
// repeated), matching how real guest memory compresses in the cold
// tier without changing the dedup story.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"faasnap/internal/core"
	"faasnap/internal/snapfile"
	"faasnap/internal/snapshot"
)

// DefaultChunkPages is the chunking granularity: 64 pages = 256 KiB,
// page-aligned in guest-page index space.
const DefaultChunkPages = 64

// seedFor derives the content seed of one page.
func seedFor(key string, page int64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64() ^ (uint64(page) * 0x9e3779b97f4a7c15)
}

// fillPage writes page content for seed into buf (one page): a 1 KiB
// splitmix64-generated pattern repeated to fill the page.
func fillPage(buf []byte, seed uint64) {
	const pattern = 1024
	n := len(buf)
	if n > pattern {
		n = pattern
	}
	x := seed
	for i := 0; i+8 <= n; i += 8 {
		x += 0x9e3779b97f4a7c15
		z := x
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		binary.LittleEndian.PutUint64(buf[i:], z)
	}
	for i := n; i < len(buf); i += n {
		copy(buf[i:], buf[:n])
	}
}

// Chunk pairs a chunk-map reference with its payload bytes.
type Chunk struct {
	Ref  snapfile.ChunkRef
	Data []byte
}

// interval is a half-open page range tagged with its loading-set
// group.
type interval struct {
	start, end int64
	group      int
}

// lsIntervals flattens the loading set's non-zero regions into sorted
// page intervals.
func lsIntervals(arts *core.Artifacts) []interval {
	var out []interval
	if arts.LS == nil {
		return out
	}
	for _, r := range arts.LS.Regions {
		if r.Zero || r.Len <= 0 {
			continue
		}
		out = append(out, interval{start: r.Start, end: r.Start + r.Len, group: r.Group})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].start < out[j].start })
	return out
}

// BuildChunks cuts arts' memory file into content-addressed chunks of
// chunkPages pages (<= 0 takes DefaultChunkPages). All-zero extents
// produce no chunk — a restore zero-fills uncovered ranges. Each ref
// carries whether the chunk overlaps the loading set and the lowest
// overlapping group, which orders eager fetching on restore.
func BuildChunks(arts *core.Artifacts, chunkPages int64) (*snapfile.ChunkMap, []Chunk) {
	if chunkPages <= 0 {
		chunkPages = DefaultChunkPages
	}
	mem := arts.Mem
	baseKey := fmt.Sprintf("base-image-%dp", arts.Fn.BootPages)
	fnKey := "fn-" + arts.Fn.Name
	ls := lsIntervals(arts)
	cm := &snapfile.ChunkMap{ChunkPages: chunkPages}
	var chunks []Chunk
	li := 0
	for start := int64(0); start < mem.Pages; start += chunkPages {
		end := start + chunkPages
		if end > mem.Pages {
			end = mem.Pages
		}
		nonZero := false
		for p := start; p < end; p++ {
			if !mem.IsZero(p) {
				nonZero = true
				break
			}
		}
		if !nonZero {
			continue
		}
		data := make([]byte, (end-start)*snapshot.PageSize)
		for p := start; p < end; p++ {
			if mem.IsZero(p) {
				continue
			}
			key := fnKey
			if p < arts.Fn.BootPages {
				key = baseKey
			}
			off := (p - start) * snapshot.PageSize
			fillPage(data[off:off+snapshot.PageSize], seedFor(key, p))
		}
		ref := snapfile.ChunkRef{
			Digest:    Sum(data),
			StartPage: start,
			Pages:     end - start,
			Bytes:     int64(len(data)),
			Group:     -1,
		}
		// Advance the loading-set cursor past intervals that end before
		// this chunk, then scan the overlapping ones for the lowest group.
		for li < len(ls) && ls[li].end <= start {
			li++
		}
		for i := li; i < len(ls) && ls[i].start < end; i++ {
			if ls[i].end <= start {
				continue
			}
			ref.LS = true
			if ref.Group < 0 || int64(ls[i].group) < ref.Group {
				ref.Group = int64(ls[i].group)
			}
		}
		cm.Refs = append(cm.Refs, ref)
		chunks = append(chunks, Chunk{Ref: ref, Data: data})
	}
	return cm, chunks
}
