package casstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"faasnap/internal/core"
	"faasnap/internal/telemetry"
	"faasnap/internal/workload"
)

func newStore(t *testing.T) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return s, dir
}

func TestPutGetRoundTrip(t *testing.T) {
	s, _ := newStore(t)
	data := bytes.Repeat([]byte("faasnap"), 1000)
	d, existed, err := s.Put(data)
	if err != nil || existed {
		t.Fatalf("put = existed=%v, %v", existed, err)
	}
	if !s.Has(d) {
		t.Fatal("Has after put = false")
	}
	got, tier, err := s.Get(d)
	if err != nil || tier != TierLocal || !bytes.Equal(got, data) {
		t.Fatalf("get = tier=%v err=%v match=%v", tier, err, bytes.Equal(got, data))
	}
	// Second put of the same content is a dedup hit.
	d2, existed, err := s.Put(data)
	if err != nil || !existed || d2 != d {
		t.Fatalf("re-put = %s existed=%v, %v", d2, existed, err)
	}
	if v := s.dedupHits.Value(); v != 1 {
		t.Fatalf("dedup hits = %v, want 1", v)
	}
}

func TestPutDigestRejectsMismatch(t *testing.T) {
	s, _ := newStore(t)
	d := Sum([]byte("right"))
	if _, err := s.PutDigest(d, []byte("wrong")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mismatched put = %v, want ErrCorrupt", err)
	}
	if s.Has(d) {
		t.Fatal("mismatched payload was committed")
	}
}

func TestGetMissing(t *testing.T) {
	s, _ := newStore(t)
	if _, _, err := s.Get(Sum([]byte("never stored"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get missing = %v, want ErrNotFound", err)
	}
}

// TestGetLocalReadErrorNotMaskedAsMissing: a local-tier read failure
// that is not ENOENT (here: the chunk path is a directory, so the read
// fails with EISDIR) must propagate as an I/O error, not fall through
// to the cold tier and come back as ErrNotFound.
func TestGetLocalReadErrorNotMaskedAsMissing(t *testing.T) {
	s, _ := newStore(t)
	d := Sum([]byte("unreadable"))
	if err := os.MkdirAll(s.localPath(d), 0o755); err != nil {
		t.Fatal(err)
	}
	_, _, err := s.Get(d)
	if err == nil {
		t.Fatal("get on unreadable local chunk succeeded")
	}
	if errors.Is(err, ErrNotFound) {
		t.Fatalf("local read failure reported as ErrNotFound: %v", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("local read failure reported as ErrCorrupt: %v", err)
	}
}

func TestDemoteAndColdGet(t *testing.T) {
	s, _ := newStore(t)
	// Compressible content, as chunk payloads are.
	data := bytes.Repeat([]byte("abcdefgh"), 32*1024)
	d, _, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Demote(d); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Lstat(s.localPath(d)); !os.IsNotExist(err) {
		t.Fatal("local copy survived demotion")
	}
	got, tier, err := s.Get(d)
	if err != nil || tier != TierCold || !bytes.Equal(got, data) {
		t.Fatalf("cold get = tier=%v err=%v match=%v", tier, err, bytes.Equal(got, data))
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ColdChunks != 1 || st.LocalChunks != 0 {
		t.Fatalf("stats = %+v, want 1 cold chunk", st)
	}
	if st.ColdBytes >= int64(len(data)) {
		t.Fatalf("cold tier stored %d bytes for %d raw — compression missing", st.ColdBytes, len(data))
	}
	// Demoting again is a no-op.
	if err := s.Demote(d); err != nil {
		t.Fatalf("re-demote = %v", err)
	}
}

func TestCorruptChunkQuarantines(t *testing.T) {
	s, dir := newStore(t)
	data := []byte("chunk payload with enough bytes to flip")
	d, _, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	// Rot the chunk on disk.
	path := s.localPath(d)
	raw, _ := os.ReadFile(path)
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(d); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("get corrupt = %v, want ErrCorrupt", err)
	}
	if s.Has(d) {
		t.Fatal("corrupt chunk still served by Has")
	}
	q := filepath.Join(dir, "quarantine", "chunk-"+d.String())
	if _, err := os.Lstat(q); err != nil {
		t.Fatalf("corrupt chunk not quarantined at %s: %v", q, err)
	}
	if _, _, err := s.Get(d); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after quarantine = %v, want ErrNotFound", err)
	}
	if v := s.quarantined.Value(); v != 1 {
		t.Fatalf("quarantine counter = %v, want 1", v)
	}
}

func TestGC(t *testing.T) {
	s, _ := newStore(t)
	live, _, err := s.Put([]byte("live chunk"))
	if err != nil {
		t.Fatal(err)
	}
	dead, _, err := s.Put([]byte("dead chunk"))
	if err != nil {
		t.Fatal(err)
	}
	coldLive, _, err := s.Put(bytes.Repeat([]byte("cold"), 4096))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.GC(
		func(d Digest) bool { return d == live || d == coldLive },
		func(d Digest) bool { return d == live }, // coldLive is live but not hot
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 1 || res.Kept != 2 || res.Demoted != 1 {
		t.Fatalf("gc = %+v, want removed=1 kept=2 demoted=1", res)
	}
	if s.Has(dead) {
		t.Fatal("dead chunk survived GC")
	}
	if !s.Has(live) || !s.Has(coldLive) {
		t.Fatal("live chunk removed by GC")
	}
	if _, tier, err := s.Get(coldLive); err != nil || tier != TierCold {
		t.Fatalf("demoted chunk: tier=%v err=%v, want cold", tier, err)
	}
}

func TestSweepTemp(t *testing.T) {
	s, _ := newStore(t)
	tmp := filepath.Join(s.localDir(), "ab", "deadbeef.123.tmp")
	if err := os.MkdirAll(filepath.Dir(tmp), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tmp, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s.SweepTemp()
	if _, err := os.Lstat(tmp); !os.IsNotExist(err) {
		t.Fatal("temp file survived sweep")
	}
}

func TestParseDigest(t *testing.T) {
	d := Sum([]byte("x"))
	got, err := ParseDigest(d.String())
	if err != nil || got != d {
		t.Fatalf("round trip = %v, %v", got, err)
	}
	if _, err := ParseDigest("short"); err == nil {
		t.Fatal("short digest accepted")
	}
	if _, err := ParseDigest(string(bytes.Repeat([]byte("z"), 64))); err == nil {
		t.Fatal("non-hex digest accepted")
	}
}

// sharedBaseSpecs builds two custom functions that differ only in name
// — the same boot/runtime image, i.e. recorded from a shared base.
func sharedBaseSpecs(t *testing.T) (*workload.Spec, *workload.Spec) {
	t.Helper()
	mk := func(name string) *workload.Spec {
		spec, err := workload.ParseSpec([]byte(`{
			"name": "` + name + `", "boot_mb": 16, "stable_pages": 128,
			"chunk_mean": 4, "retain_frac": 0.5, "base_ms": 1, "per_kb_us": 2,
			"init_ms": 5, "input_a": {"bytes": 4096, "data_pages": 8},
			"input_b": {"bytes": 16384, "data_pages": 24}}`))
		if err != nil {
			t.Fatal(err)
		}
		return spec
	}
	return mk("cas-alpha"), mk("cas-beta")
}

func TestBuildChunksDeterministic(t *testing.T) {
	fn, _ := sharedBaseSpecs(t)
	arts, _ := core.Record(core.DefaultHostConfig(), fn, fn.A)
	cm1, chunks1 := BuildChunks(arts, 0)
	cm2, chunks2 := BuildChunks(arts, 0)
	if len(cm1.Refs) == 0 || len(cm1.Refs) != len(cm2.Refs) {
		t.Fatalf("ref counts: %d vs %d", len(cm1.Refs), len(cm2.Refs))
	}
	for i := range cm1.Refs {
		if cm1.Refs[i] != cm2.Refs[i] {
			t.Fatalf("ref %d differs across builds", i)
		}
		if Sum(chunks1[i].Data) != chunks1[i].Ref.Digest {
			t.Fatalf("chunk %d payload does not hash to its ref", i)
		}
		_ = chunks2
	}
	if cm1.ChunkPages != DefaultChunkPages {
		t.Fatalf("chunk pages = %d", cm1.ChunkPages)
	}
}

func TestBuildChunksLSFlags(t *testing.T) {
	fn, _ := sharedBaseSpecs(t)
	arts, _ := core.Record(core.DefaultHostConfig(), fn, fn.A)
	cm, _ := BuildChunks(arts, 0)
	var lsRefs int
	for _, r := range cm.Refs {
		if r.LS {
			lsRefs++
			if r.Group < 0 {
				t.Fatalf("LS ref at page %d has no group", r.StartPage)
			}
		} else if r.Group != -1 {
			t.Fatalf("non-LS ref at page %d has group %d", r.StartPage, r.Group)
		}
	}
	if lsRefs == 0 || lsRefs == len(cm.Refs) {
		t.Fatalf("LS refs = %d of %d; want a proper subset", lsRefs, len(cm.Refs))
	}
	if lsb, tot := cm.LSBytes(), cm.TotalBytes(); lsb <= 0 || lsb >= tot {
		t.Fatalf("LS bytes %d of total %d; want a proper subset", lsb, tot)
	}
}

func TestSharedBaseImageDedup(t *testing.T) {
	fnA, fnB := sharedBaseSpecs(t)
	artsA, _ := core.Record(core.DefaultHostConfig(), fnA, fnA.A)
	artsB, _ := core.Record(core.DefaultHostConfig(), fnB, fnB.A)
	_, chunksA := BuildChunks(artsA, 0)
	_, chunksB := BuildChunks(artsB, 0)

	s, _ := newStore(t)
	var logical, aBytes int64
	for _, c := range chunksA {
		if _, _, err := s.Put(c.Data); err != nil {
			t.Fatal(err)
		}
		logical += int64(len(c.Data))
		aBytes += int64(len(c.Data))
	}
	var shared, total int
	for _, c := range chunksB {
		existed, err := s.PutDigest(c.Ref.Digest, c.Data)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if existed {
			shared++
		}
		logical += int64(len(c.Data))
	}
	if shared*2 <= total {
		t.Fatalf("shared-base dedup: only %d of %d of B's chunks dedup against A", shared, total)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Store size must sit well below 2x a single snapshot's chunk bytes.
	if st.PhysicalBytes() >= aBytes*17/10 {
		t.Fatalf("store holds %d bytes for two snapshots of %d each — dedup not real", st.PhysicalBytes(), aBytes)
	}
	if st.PhysicalBytes() >= logical {
		t.Fatalf("physical %d >= logical %d", st.PhysicalBytes(), logical)
	}
}
