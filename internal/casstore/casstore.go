// Package casstore is a content-addressed chunk store for snapshot
// artifacts. Snapshot memory content is cut into fixed-size,
// page-aligned extents addressed by SHA-256 (see chunks.go); each
// distinct chunk is stored once, so functions recorded from a shared
// base image (guest kernel, runtime) share their common pages on disk
// and over the wire — the dedup/lazy-chunk design of the snapshot
// optimization literature applied under FaaSnap's loading sets.
//
// Chunks live in two tiers under <state-dir>/cas:
//
//	chunks/<aa>/<digest>     local tier: raw bytes, fsync-disciplined
//	cold/<aa>/<digest>.z     cold tier: DEFLATE-compressed, modeled
//	                         remote latency (internal/blockdev profile)
//
// A chunk commit follows the same atomicity discipline as snapfiles:
// temp-file write, file fsync, rename to the digest name, parent-dir
// fsync. A committed chunk is therefore complete or absent — and
// because the name is the content hash, Get re-verifies the digest and
// quarantines (never serves) a chunk that rotted on disk.
//
// The store is refcount-free on the write path: chunks are shared, so
// deletes only remove references (snapfiles); GC takes the live digest
// set from the caller — computed from the manifest's live chunk maps,
// honoring delete tombstones — and removes everything else.
package casstore

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"faasnap/internal/blockdev"
	"faasnap/internal/chaos"
	"faasnap/internal/statedir"
	"faasnap/internal/telemetry"
)

// Digest is a chunk's SHA-256 content address.
type Digest [sha256.Size]byte

func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Sum is the digest of b.
func Sum(b []byte) Digest { return sha256.Sum256(b) }

// ParseDigest decodes a 64-char hex digest.
func ParseDigest(s string) (Digest, error) {
	var d Digest
	if len(s) != hex.EncodedLen(len(d)) {
		return d, fmt.Errorf("casstore: bad digest length %d", len(s))
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return d, fmt.Errorf("casstore: bad digest: %w", err)
	}
	copy(d[:], raw)
	return d, nil
}

// Tier says which tier served or holds a chunk.
type Tier int

const (
	TierLocal Tier = iota
	TierCold
)

func (t Tier) String() string {
	if t == TierCold {
		return "cold"
	}
	return "local"
}

// ErrNotFound reports a digest absent from both tiers.
var ErrNotFound = errors.New("casstore: chunk not found")

// ErrCorrupt reports a chunk whose bytes no longer hash to its name;
// the store has already moved it to quarantine when Get returns this.
var ErrCorrupt = errors.New("casstore: chunk corrupt")

// Stats is the store's physical occupancy.
type Stats struct {
	LocalChunks int64 `json:"local_chunks"`
	LocalBytes  int64 `json:"local_bytes"`
	ColdChunks  int64 `json:"cold_chunks"`
	// ColdBytes is the cold tier's on-disk (compressed) size.
	ColdBytes int64 `json:"cold_bytes"`
}

// PhysicalBytes is the store's total on-disk footprint.
func (s Stats) PhysicalBytes() int64 { return s.LocalBytes + s.ColdBytes }

// GCResult reports one sweep.
type GCResult struct {
	Removed        int64 `json:"removed_chunks"`
	ReclaimedBytes int64 `json:"reclaimed_bytes"`
	Kept           int64 `json:"kept_chunks"`
	Demoted        int64 `json:"demoted_chunks"`
}

// Store is one host's chunk store.
type Store struct {
	dir  string // <state-dir>/cas
	qdir string // <state-dir>/quarantine, shared with snapfiles

	// cold models the remote tier's device: fetch latency is
	// Profile.Latency + size/Bandwidth, reported via telemetry the same
	// way internal/blockdev models devices — recorded, not slept, so
	// the control plane stays fast while the cost is visible.
	cold blockdev.Profile

	// mu excludes GC/demotion from concurrent puts and gets; the write
	// path itself is lock-free between rename-based commits.
	mu sync.RWMutex

	fetchLocal  *telemetry.Histogram
	fetchCold   *telemetry.Histogram
	dedupHits   *telemetry.Counter
	quarantined *telemetry.Counter
	chunksLocal *telemetry.Gauge
	chunksCold  *telemetry.Gauge
	bytesLocal  *telemetry.Gauge
	bytesCold   *telemetry.Gauge

	onQuarantine atomic.Pointer[func(d Digest, tier Tier)]
}

// SetOnQuarantine installs a callback invoked whenever a corrupt chunk
// is moved to quarantine, with its digest and the tier it failed in.
// The callback runs with the store lock held; it must not call back
// into the store.
func (s *Store) SetOnQuarantine(fn func(d Digest, tier Tier)) {
	if s == nil || fn == nil {
		return
	}
	s.onQuarantine.Store(&fn)
}

// Open opens (creating if needed) the chunk store under stateDir,
// registering its metric families on reg (nil for none).
func Open(stateDir string, reg *telemetry.Registry) (*Store, error) {
	s := &Store{
		dir:  filepath.Join(stateDir, "cas"),
		qdir: filepath.Join(stateDir, "quarantine"),
		cold: blockdev.EBSRemote(),
	}
	for _, d := range []string{s.localDir(), s.coldDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("casstore: %w", err)
		}
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s.fetchLocal = reg.Histogram("faasnap_cas_fetch_seconds",
		"Chunk fetch latency by serving tier (cold-tier latency is the modeled remote-device cost).",
		telemetry.L("tier", "local"))
	s.fetchCold = reg.Histogram("faasnap_cas_fetch_seconds",
		"Chunk fetch latency by serving tier (cold-tier latency is the modeled remote-device cost).",
		telemetry.L("tier", "cold"))
	s.dedupHits = reg.Counter("faasnap_cas_put_dedup_hits_total",
		"Chunk puts that found their digest already stored.", nil)
	s.quarantined = reg.Counter("faasnap_cas_chunk_quarantined_total",
		"Chunks whose bytes failed digest verification and were quarantined.", nil)
	s.chunksLocal = reg.Gauge("faasnap_cas_chunks",
		"Chunks stored, by tier.", telemetry.L("tier", "local"))
	s.chunksCold = reg.Gauge("faasnap_cas_chunks",
		"Chunks stored, by tier.", telemetry.L("tier", "cold"))
	s.bytesLocal = reg.Gauge("faasnap_cas_bytes",
		"On-disk chunk bytes, by tier (cold is compressed).", telemetry.L("tier", "local"))
	s.bytesCold = reg.Gauge("faasnap_cas_bytes",
		"On-disk chunk bytes, by tier (cold is compressed).", telemetry.L("tier", "cold"))
	s.refreshGauges()
	return s, nil
}

func (s *Store) localDir() string { return filepath.Join(s.dir, "chunks") }
func (s *Store) coldDir() string  { return filepath.Join(s.dir, "cold") }

func (s *Store) localPath(d Digest) string {
	h := d.String()
	return filepath.Join(s.localDir(), h[:2], h)
}

func (s *Store) coldPath(d Digest) string {
	h := d.String()
	return filepath.Join(s.coldDir(), h[:2], h+".z")
}

// Has reports whether the digest is stored in either tier.
func (s *Store) Has(d Digest) bool {
	if _, err := os.Lstat(s.localPath(d)); err == nil {
		return true
	}
	_, err := os.Lstat(s.coldPath(d))
	return err == nil
}

// Put stores data under its own digest, returning the digest and
// whether it was already present (a dedup hit). The commit is atomic
// and durable; concurrent puts of the same digest are benign — both
// write identical bytes and rename to the same name.
func (s *Store) Put(data []byte) (Digest, bool, error) {
	d := Sum(data)
	existed, err := s.PutDigest(d, data)
	return d, existed, err
}

// PutDigest stores data that must hash to d — the receive path for
// chunks fetched from a peer, where a transfer corruption has to be
// rejected before the bytes are committed under a trusted name.
func (s *Store) PutDigest(d Digest, data []byte) (bool, error) {
	if got := Sum(data); got != d {
		return false, fmt.Errorf("%w: payload hashes to %s, expected %s", ErrCorrupt, got, d)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.Has(d) {
		s.dedupHits.Inc()
		return true, nil
	}
	final := s.localPath(d)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return false, err
	}
	f, err := os.CreateTemp(filepath.Dir(final), d.String()+".*.tmp")
	if err != nil {
		return false, err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return false, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return false, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return false, err
	}
	chaos.MaybeCrash(chaos.CrashChunkPreRename)
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return false, err
	}
	chaos.MaybeCrash(chaos.CrashChunkPostRename)
	dir, err := os.Open(filepath.Dir(final))
	if err != nil {
		return false, err
	}
	defer dir.Close()
	if err := dir.Sync(); err != nil {
		return false, err
	}
	s.chunksLocal.Inc()
	s.bytesLocal.Add(float64(len(data)))
	return false, nil
}

// Get returns a chunk's bytes and the tier that served it, verifying
// the content against the digest. A mismatch quarantines the chunk and
// returns ErrCorrupt — damaged content is evidence, never a response.
// Cold-tier reads decompress and report the modeled remote-fetch
// latency on the tier's histogram.
func (s *Store) Get(d Digest) ([]byte, Tier, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	start := time.Now()
	raw, lerr := os.ReadFile(s.localPath(d))
	if lerr == nil {
		if Sum(raw) != d {
			s.quarantineChunk(s.localPath(d), d, int64(len(raw)), TierLocal)
			return nil, TierLocal, fmt.Errorf("%w: %s (local tier)", ErrCorrupt, d)
		}
		s.fetchLocal.Observe(time.Since(start))
		return raw, TierLocal, nil
	}
	if !os.IsNotExist(lerr) {
		// A present-but-unreadable local chunk (EACCES, I/O error) is a
		// read failure, not absence — falling through to the cold tier
		// would misreport it as ErrNotFound.
		return nil, TierLocal, fmt.Errorf("casstore: read chunk %s: %w", d, lerr)
	}
	comp, err := os.ReadFile(s.coldPath(d))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, TierLocal, fmt.Errorf("%w: %s", ErrNotFound, d)
		}
		return nil, TierCold, fmt.Errorf("casstore: read chunk %s: %w", d, err)
	}
	fr := flate.NewReader(bytes.NewReader(comp))
	raw, err = io.ReadAll(fr)
	fr.Close()
	if err != nil || Sum(raw) != d {
		s.quarantineChunk(s.coldPath(d), d, int64(len(comp)), TierCold)
		return nil, TierCold, fmt.Errorf("%w: %s (cold tier)", ErrCorrupt, d)
	}
	// The modeled remote device: per-request latency plus the
	// compressed payload over the profile's bandwidth.
	s.fetchCold.Observe(s.cold.Latency +
		time.Duration(float64(len(comp))/float64(s.cold.Bandwidth)*float64(time.Second)))
	return raw, TierCold, nil
}

// quarantineChunk moves a failed chunk into the shared quarantine
// directory (collision-free names, same rules as snapfiles). Caller
// holds at least the read lock.
func (s *Store) quarantineChunk(path string, d Digest, size int64, tier Tier) {
	if err := os.MkdirAll(s.qdir, 0o755); err != nil {
		return
	}
	dst := statedir.QuarantinePath(s.qdir, "chunk-"+d.String())
	if err := os.Rename(path, dst); err != nil {
		return
	}
	s.quarantined.Inc()
	if fn := s.onQuarantine.Load(); fn != nil {
		(*fn)(d, tier)
	}
	if tier == TierCold {
		s.chunksCold.Dec()
		s.bytesCold.Add(-float64(size))
	} else {
		s.chunksLocal.Dec()
		s.bytesLocal.Add(-float64(size))
	}
}

// Demote moves a local chunk to the cold tier, compressed. Used for
// chunks outside every live loading set — the long tail a restore
// only needs lazily, which can pay the remote fetch cost.
func (s *Store) Demote(d Digest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, err := os.ReadFile(s.localPath(d))
	if err != nil {
		if _, cerr := os.Lstat(s.coldPath(d)); cerr == nil {
			return nil // already cold
		}
		return fmt.Errorf("%w: %s", ErrNotFound, d)
	}
	if Sum(raw) != d {
		s.quarantineChunk(s.localPath(d), d, int64(len(raw)), TierLocal)
		return fmt.Errorf("%w: %s", ErrCorrupt, d)
	}
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return err
	}
	if _, err := zw.Write(raw); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}
	final := s.coldPath(d)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(final), d.String()+".*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	// Same discipline as PutDigest: the rename is durable only once the
	// parent directory is synced. Only after the cold copy is durable —
	// file and directory entry both — does the local copy go; a crash
	// before this point leaves the chunk present in at least one tier.
	dir, err := os.Open(filepath.Dir(final))
	if err != nil {
		return err
	}
	syncErr := dir.Sync()
	dir.Close()
	if syncErr != nil {
		return syncErr
	}
	if err := os.Remove(s.localPath(d)); err != nil {
		return err
	}
	s.chunksLocal.Dec()
	s.bytesLocal.Add(-float64(len(raw)))
	s.chunksCold.Inc()
	s.bytesCold.Add(float64(buf.Len()))
	return nil
}

// tierEntry is one stored chunk found by a walk.
type tierEntry struct {
	digest Digest
	path   string
	size   int64
	tier   Tier
}

// walk lists every committed chunk in both tiers. Temp files and
// undecodable names are skipped — they are sweep fodder, not chunks.
func (s *Store) walk() ([]tierEntry, error) {
	var out []tierEntry
	for _, t := range []struct {
		dir  string
		tier Tier
	}{{s.localDir(), TierLocal}, {s.coldDir(), TierCold}} {
		err := filepath.WalkDir(t.dir, func(path string, de os.DirEntry, err error) error {
			if err != nil || de.IsDir() {
				return err
			}
			name := de.Name()
			if strings.HasSuffix(name, ".tmp") {
				return nil
			}
			d, perr := ParseDigest(strings.TrimSuffix(name, ".z"))
			if perr != nil {
				return nil
			}
			info, serr := de.Info()
			if serr != nil {
				return nil
			}
			out = append(out, tierEntry{digest: d, path: path, size: info.Size(), tier: t.tier})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i].digest[:], out[j].digest[:]) < 0
	})
	return out, nil
}

// List returns every stored digest, sorted.
func (s *Store) List() ([]Digest, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, err := s.walk()
	if err != nil {
		return nil, err
	}
	out := make([]Digest, 0, len(entries))
	for _, e := range entries {
		if n := len(out); n > 0 && out[n-1] == e.digest {
			continue // present in both tiers
		}
		out = append(out, e.digest)
	}
	return out, nil
}

// Stats reports the store's physical occupancy by re-walking the tree,
// so it is exact even across restarts.
func (s *Store) Stats() (Stats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.statsLocked()
}

func (s *Store) statsLocked() (Stats, error) {
	entries, err := s.walk()
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	for _, e := range entries {
		if e.tier == TierCold {
			st.ColdChunks++
			st.ColdBytes += e.size
		} else {
			st.LocalChunks++
			st.LocalBytes += e.size
		}
	}
	return st, nil
}

// refreshGauges re-derives the occupancy gauges from disk; called at
// open and after GC so restarts report true state.
func (s *Store) refreshGauges() {
	st, err := s.statsLocked()
	if err != nil {
		return
	}
	s.chunksLocal.Set(float64(st.LocalChunks))
	s.bytesLocal.Set(float64(st.LocalBytes))
	s.chunksCold.Set(float64(st.ColdChunks))
	s.bytesCold.Set(float64(st.ColdBytes))
}

// GC removes every chunk whose digest live reports false and demotes
// kept chunks that hot reports false for (nil hot demotes nothing).
// The caller computes liveness from the manifest's live entries only —
// tombstoned functions contribute nothing, so an acked delete's chunks
// are collected (unless shared) and can never resurrect.
func (s *Store) GC(live func(Digest) bool, hot func(Digest) bool) (GCResult, error) {
	s.mu.Lock()
	entries, err := s.walk()
	s.mu.Unlock()
	if err != nil {
		return GCResult{}, err
	}
	var res GCResult
	var demote []Digest
	s.mu.Lock()
	for _, e := range entries {
		if live(e.digest) {
			res.Kept++
			if e.tier == TierLocal && hot != nil && !hot(e.digest) {
				demote = append(demote, e.digest)
			}
			continue
		}
		if err := os.Remove(e.path); err == nil {
			res.Removed++
			res.ReclaimedBytes += e.size
		}
	}
	s.mu.Unlock()
	for _, d := range demote {
		if err := s.Demote(d); err == nil {
			res.Demoted++
		}
	}
	s.mu.Lock()
	s.refreshGauges()
	s.mu.Unlock()
	return res, nil
}

// SweepTemp removes leftover chunk temp files — mid-write when the
// process died, never acknowledged. Recovery calls it before serving.
func (s *Store) SweepTemp() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = filepath.WalkDir(s.dir, func(path string, de os.DirEntry, err error) error {
		if err != nil || de.IsDir() {
			return nil
		}
		if strings.HasSuffix(de.Name(), ".tmp") {
			_ = os.Remove(path)
		}
		return nil
	})
}
