package events

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestAppendAssignsMonotonicSeq(t *testing.T) {
	l := NewLedger(8)
	a := l.Append(Event{Type: GCSweep})
	b := l.Append(Event{Type: Repair, Function: "fn"})
	if a.Seq != 1 || b.Seq != 2 {
		t.Fatalf("seqs = %d, %d, want 1, 2", a.Seq, b.Seq)
	}
	if a.UnixMs == 0 || b.UnixMs == 0 {
		t.Fatal("events not timestamped")
	}
	if l.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2", l.LastSeq())
	}
}

func TestRingBoundAndSeqContinuity(t *testing.T) {
	l := NewLedger(4)
	for i := 0; i < 10; i++ {
		l.Append(Event{Type: GCSweep})
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want ring-bounded 4", l.Len())
	}
	got := l.Since(0, "", "")
	if len(got) != 4 {
		t.Fatalf("Since(0) = %d events, want 4", len(got))
	}
	// Oldest retained is seq 7; sequence numbers keep counting across
	// overwrites.
	for i, e := range got {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestSinceFilters(t *testing.T) {
	l := NewLedger(16)
	l.Append(Event{Type: Repair, Function: "a"})
	l.Append(Event{Type: Repair, Function: "b"})
	l.Append(Event{Type: GCSweep})
	l.Append(Event{Type: Repair, Function: "a"})

	if got := l.Since(0, Repair, ""); len(got) != 3 {
		t.Fatalf("type filter = %d, want 3", len(got))
	}
	if got := l.Since(0, Repair, "a"); len(got) != 2 {
		t.Fatalf("type+function filter = %d, want 2", len(got))
	}
	if got := l.Since(2, "", ""); len(got) != 2 || got[0].Seq != 3 {
		t.Fatalf("since_seq filter = %+v, want seqs 3,4", got)
	}
	if got := l.Since(99, "", ""); len(got) != 0 {
		t.Fatalf("future since_seq returned %d events", len(got))
	}
}

func TestCauseLinkRoundTrips(t *testing.T) {
	l := NewLedger(8)
	def := l.Append(Event{Type: ManifestDeficit, Function: "fn", Origin: "127.0.0.1:1"})
	rep := l.Append(Event{
		Type: Repair, Function: "fn", Origin: "gateway",
		CauseSeq: def.Seq, CauseOrigin: def.Origin, TraceID: "abc",
	})
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Event
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.CauseSeq != def.Seq || back.CauseOrigin != "127.0.0.1:1" || back.TraceID != "abc" {
		t.Fatalf("cause link lost in round trip: %+v", back)
	}
}

func TestWatchDeliversAndSlowSubscriberDrops(t *testing.T) {
	l := NewLedger(8)
	var drops int
	l.OnDrop = func() { drops++ }

	fast := l.Subscribe()
	l.Append(Event{Type: GCSweep})
	select {
	case line := <-fast:
		var e Event
		if err := json.Unmarshal(line, &e); err != nil || e.Type != GCSweep {
			t.Fatalf("bad line %q: %v", line, err)
		}
	case <-time.After(time.Second):
		t.Fatal("subscriber got nothing")
	}
	l.Unsubscribe(fast)

	// A subscriber that never reads must not block Append past its
	// buffer; overflow increments the drop counter.
	slow := l.Subscribe()
	for i := 0; i < subBuf+50; i++ {
		l.Append(Event{Type: Repair})
	}
	if l.Dropped() != 50 || drops != 50 {
		t.Fatalf("dropped = %d (cb %d), want 50", l.Dropped(), drops)
	}
	l.Unsubscribe(slow)
}

func TestConcurrentAppendAndSubscribe(t *testing.T) {
	l := NewLedger(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Append(Event{Type: ChaosInjected})
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				ch := l.Subscribe()
				l.Since(0, "", "")
				l.Unsubscribe(ch)
			}
		}()
	}
	wg.Wait()
	if l.LastSeq() != 400 {
		t.Fatalf("LastSeq = %d, want 400", l.LastSeq())
	}
}

func TestCloseIdempotent(t *testing.T) {
	l := NewLedger(4)
	l.Append(Event{Type: GCSweep})
	l.Close()
	l.Close()
	select {
	case <-l.Done():
	default:
		t.Fatal("Done not closed")
	}
	if got := l.Since(0, "", ""); len(got) != 1 {
		t.Fatal("ring unreadable after Close")
	}
}
