// Package events implements the cluster event ledger: a bounded,
// monotonically-sequenced ring of typed control-plane events with a
// non-blocking watch hub for NDJSON streaming.
//
// The ledger records what the control plane did while no request was
// in flight — breaker transitions, anti-entropy repairs, GC sweeps,
// chunk quarantines, lazy-fetch abandonment, recovery replay, chaos
// rule firings, SLO page conditions, and backend stale/clean
// transitions. Each event carries a sequence number that is monotonic
// per ledger (per daemon or per gateway); causal links between events
// are expressed as (cause_seq, cause_origin) pairs so a repair on the
// gateway can point at the manifest-deficit event on the daemon that
// triggered it.
package events

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// Type enumerates the control-plane event kinds the ledger records.
type Type string

const (
	// BreakerTransition fires when a circuit breaker changes state
	// (daemon per-function breakers and gateway per-backend breakers).
	BreakerTransition Type = "breaker_transition"
	// ManifestDeficit fires when a daemon first observes (or the size
	// of) a chunk deficit for a registered function.
	ManifestDeficit Type = "manifest_deficit"
	// Repair fires on the gateway for each anti-entropy repair action.
	Repair Type = "repair"
	// Converged fires on the gateway when a previously-stale backend
	// returns to the converged set.
	Converged Type = "converged"
	// GCSweep fires after a chunk-store garbage collection pass.
	GCSweep Type = "gc_sweep"
	// ChunkQuarantine fires when the chunk store quarantines a
	// corrupted chunk.
	ChunkQuarantine Type = "chunk_quarantine"
	// SnapfileQuarantine fires when the daemon quarantines a corrupt
	// snapshot file.
	SnapfileQuarantine Type = "snapfile_quarantine"
	// LazyAbandoned fires when the background lazy fetcher gives up on
	// one or more chunks after exhausting retries.
	LazyAbandoned Type = "lazy_abandoned"
	// RecoveryReplay fires after a daemon finishes replaying its
	// manifest journal at startup.
	RecoveryReplay Type = "recovery_replay"
	// ChaosInjected fires each time a chaos rule injects a fault.
	ChaosInjected Type = "chaos_injected"
	// SLOPage fires when a function's error budget enters or leaves
	// the page condition (fast and slow burn both above 1).
	SLOPage Type = "slo_page"
	// BackendStale fires when the gateway marks a backend stale.
	BackendStale Type = "backend_stale"
	// BackendClean fires when the gateway marks a backend clean again.
	BackendClean Type = "backend_clean"
)

// Event is one entry in the ledger. Seq is assigned by Append and is
// monotonic within one ledger; CauseSeq/CauseOrigin optionally link to
// the event (possibly on another host) that caused this one.
type Event struct {
	Seq         uint64            `json:"seq"`
	Type        Type              `json:"type"`
	Function    string            `json:"function,omitempty"`
	Origin      string            `json:"origin,omitempty"`
	CauseSeq    uint64            `json:"cause_seq,omitempty"`
	CauseOrigin string            `json:"cause_origin,omitempty"`
	TraceID     string            `json:"trace_id,omitempty"`
	UnixMs      int64             `json:"unix_ms"`
	Fields      map[string]string `json:"fields,omitempty"`
}

// DefaultRing is the ledger capacity when none is configured.
const DefaultRing = 1024

// subBuf is the per-subscriber channel depth; mirrors the faultHub
// discipline so a stalled watcher drops lines instead of blocking the
// ledger.
const subBuf = 4096

// Ledger is a bounded ring of events plus a watch hub. All methods
// are safe for concurrent use; Append never blocks on subscribers.
type Ledger struct {
	mu      sync.Mutex
	ring    []Event
	cap     int
	next    uint64 // next sequence number to assign (first is 1)
	subs    map[chan []byte]struct{}
	done    chan struct{}
	once    sync.Once
	dropped atomic.Uint64

	// OnDrop, if set, is invoked once per line dropped on a slow
	// subscriber (wired to faasnap_events_watch_dropped_total).
	OnDrop func()
	// Now is the clock; defaults to time.Now. Tests may override.
	Now func() time.Time
}

// NewLedger returns a ledger retaining at most capacity events.
// capacity <= 0 selects DefaultRing.
func NewLedger(capacity int) *Ledger {
	if capacity <= 0 {
		capacity = DefaultRing
	}
	return &Ledger{
		cap:  capacity,
		subs: make(map[chan []byte]struct{}),
		done: make(chan struct{}),
		Now:  time.Now,
	}
}

// Append stamps e with the next sequence number and the current time,
// stores it in the ring, publishes it to watchers, and returns the
// stamped event. It never blocks: slow subscribers lose lines.
func (l *Ledger) Append(e Event) Event {
	l.mu.Lock()
	l.next++
	e.Seq = l.next
	if e.UnixMs == 0 {
		e.UnixMs = l.Now().UnixMilli()
	}
	if len(l.ring) == l.cap {
		copy(l.ring, l.ring[1:])
		l.ring[len(l.ring)-1] = e
	} else {
		l.ring = append(l.ring, e)
	}
	line, err := json.Marshal(e)
	if err == nil {
		for ch := range l.subs {
			select {
			case ch <- line:
			default:
				l.dropped.Add(1)
				if l.OnDrop != nil {
					l.OnDrop()
				}
			}
		}
	}
	l.mu.Unlock()
	return e
}

// Since returns, oldest-first, the retained events with Seq > seq that
// match the optional type and function filters (empty string matches
// everything). The returned slice is a copy.
func (l *Ledger) Since(seq uint64, typ Type, function string) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, e := range l.ring {
		if e.Seq <= seq {
			continue
		}
		if typ != "" && e.Type != typ {
			continue
		}
		if function != "" && e.Function != function {
			continue
		}
		out = append(out, e)
	}
	return out
}

// LastSeq returns the sequence number of the most recent event, or 0
// if none were appended yet.
func (l *Ledger) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Len returns the number of retained events.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}

// Dropped returns the total lines dropped on slow subscribers.
func (l *Ledger) Dropped() uint64 { return l.dropped.Load() }

// Subscribe registers a watcher and returns its line channel. Each
// line is one marshalled Event (no trailing newline).
func (l *Ledger) Subscribe() chan []byte {
	ch := make(chan []byte, subBuf)
	l.mu.Lock()
	l.subs[ch] = struct{}{}
	l.mu.Unlock()
	return ch
}

// Unsubscribe removes a watcher registered with Subscribe.
func (l *Ledger) Unsubscribe(ch chan []byte) {
	l.mu.Lock()
	delete(l.subs, ch)
	l.mu.Unlock()
}

// Done returns a channel closed when the ledger shuts down; watch
// handlers select on it to terminate streams.
func (l *Ledger) Done() <-chan struct{} { return l.done }

// Close shuts the watch hub down. Idempotent. Events already in the
// ring remain readable via Since.
func (l *Ledger) Close() {
	l.once.Do(func() { close(l.done) })
}
