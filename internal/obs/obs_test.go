package obs

import (
	"fmt"
	"testing"
)

// near reports |a-b| within float rounding slack.
func near(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestRingBounded(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Append(&Profile{Function: fmt.Sprintf("f%d", i)})
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("len/cap = %d/%d, want 4/4", r.Len(), r.Cap())
	}
	got := r.Query(Filter{}, 0)
	if len(got) != 4 {
		t.Fatalf("query returned %d, want 4", len(got))
	}
	// Newest first, oldest overwritten.
	if got[0].Function != "f9" || got[3].Function != "f6" {
		t.Fatalf("order = %s..%s, want f9..f6", got[0].Function, got[3].Function)
	}
	if got[0].Seq != 10 {
		t.Fatalf("seq = %d, want 10 (monotone across overwrites)", got[0].Seq)
	}
}

func TestRingDefaultCapacity(t *testing.T) {
	if got := NewRing(0).Cap(); got != DefaultRing {
		t.Fatalf("NewRing(0).Cap() = %d, want %d", got, DefaultRing)
	}
}

func TestQueryFilterAndLimit(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 6; i++ {
		mode := "faasnap"
		if i%2 == 1 {
			mode = "warm"
		}
		r.Append(&Profile{Function: fmt.Sprintf("f%d", i%2), Mode: mode})
	}
	if got := r.Query(Filter{Function: "f1"}, 0); len(got) != 3 {
		t.Fatalf("function filter returned %d, want 3", len(got))
	}
	if got := r.Query(Filter{Mode: "warm"}, 2); len(got) != 2 {
		t.Fatalf("mode filter with limit returned %d, want 2", len(got))
	}
	if got := r.Query(Filter{Function: "f0", Mode: "warm"}, 0); len(got) != 0 {
		t.Fatalf("conjunctive filter returned %d, want 0", len(got))
	}
}

func TestSlowestTopK(t *testing.T) {
	r := NewRing(16)
	for i, wall := range []float64{5, 40, 12, 99, 1, 63} {
		r.Append(&Profile{Function: "f", WallMs: wall, TraceID: fmt.Sprintf("t%d", i)})
	}
	got := r.Slowest(Filter{}, 3)
	if len(got) != 3 {
		t.Fatalf("slowest returned %d, want 3", len(got))
	}
	if got[0].WallMs != 99 || got[1].WallMs != 63 || got[2].WallMs != 40 {
		t.Fatalf("slowest order = %v %v %v, want 99 63 40", got[0].WallMs, got[1].WallMs, got[2].WallMs)
	}
	if got[0].TraceID != "t3" {
		t.Fatalf("slowest exemplar = %q, want t3", got[0].TraceID)
	}
}

func TestSummarize(t *testing.T) {
	var ps []*Profile
	for i := 0; i < 100; i++ {
		p := &Profile{Function: "a", Status: 200, WallMs: float64(i + 1), TotalMs: float64(2 * (i + 1))}
		if i < 10 {
			p.Status = 500
		}
		if i < 5 {
			p.Degraded = true
		}
		if i < 50 {
			p.Prefetch = &PrefetchDelta{Precision: 0.8, Recall: 0.5, WastedBytes: 4096, MissedMajorMs: 2}
		}
		ps = append(ps, p)
	}
	ps = append(ps, &Profile{Function: "b", Status: 200, WallMs: 7})
	sum := Summarize(ps)
	if sum.Count != 101 || len(sum.Functions) != 2 {
		t.Fatalf("count/functions = %d/%d, want 101/2", sum.Count, len(sum.Functions))
	}
	a := sum.Functions[0]
	if a.Function != "a" || a.Count != 100 || a.Errors != 10 || a.Degraded != 5 {
		t.Fatalf("a = %+v", a)
	}
	if a.P50WallMs < 49 || a.P50WallMs > 52 {
		t.Errorf("p50 = %g, want ~50", a.P50WallMs)
	}
	if a.P99WallMs < 98 || a.P99WallMs > 100 {
		t.Errorf("p99 = %g, want ~99", a.P99WallMs)
	}
	if a.PrefetchCount != 50 || !near(a.PrefetchPrec, 0.8) || !near(a.PrefetchRecall, 0.5) {
		t.Errorf("prefetch aggregate = %+v", a)
	}
	if a.PrefetchWasteB != 50*4096 || a.PrefetchMissedMs != 100 {
		t.Errorf("prefetch sums = %d / %g", a.PrefetchWasteB, a.PrefetchMissedMs)
	}
}

func TestMergeSummaries(t *testing.T) {
	s1 := &Summary{Count: 10, Functions: []FunctionSummary{{
		Function: "f", Count: 10, Errors: 1, P50WallMs: 10, P99WallMs: 100,
		PrefetchCount: 10, PrefetchPrec: 0.9, PrefetchRecall: 0.6, PrefetchWasteB: 100,
	}}}
	s2 := &Summary{Count: 30, Functions: []FunctionSummary{
		{Function: "f", Count: 30, Errors: 3, P50WallMs: 30, P99WallMs: 50,
			PrefetchCount: 30, PrefetchPrec: 0.5, PrefetchRecall: 0.2, PrefetchWasteB: 300},
		{Function: "g", Count: 1},
	}}
	m := MergeSummaries([]*Summary{s1, nil, s2})
	if m.Count != 40 || len(m.Functions) != 2 {
		t.Fatalf("merged count/functions = %d/%d, want 40/2", m.Count, len(m.Functions))
	}
	f := m.Functions[0]
	if f.Count != 40 || f.Errors != 4 {
		t.Fatalf("merged f counts = %+v", f)
	}
	// p50: count-weighted mean (10*10 + 30*30)/40 = 25; p99: max.
	if f.P50WallMs != 25 {
		t.Errorf("merged p50 = %g, want 25", f.P50WallMs)
	}
	if f.P99WallMs != 100 {
		t.Errorf("merged p99 = %g, want 100 (max)", f.P99WallMs)
	}
	// precision: (10*0.9 + 30*0.5)/40 = 0.6; waste sums.
	if !near(f.PrefetchPrec, 0.6) || f.PrefetchWasteB != 400 {
		t.Errorf("merged prefetch = prec %g waste %d", f.PrefetchPrec, f.PrefetchWasteB)
	}
}
