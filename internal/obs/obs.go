// Package obs is the per-invocation flight recorder: every request the
// daemon serves appends one structured Profile — phase timings, fault
// counts, page-cache activity, prefetch effectiveness, degradation and
// retry outcomes, and the trace id linking to the stitched Zipkin
// trace — into a bounded ring. The ring answers GET /profiles queries:
// raw records filtered by function/mode, server-side aggregation
// (count + p50/p99 per function), and slowest-N top-K where each entry
// carries its trace id as an exemplar, so one hop from an aggregate
// regression lands in the specific slow invocation's trace.
//
// The recorder is the bridge between the metrics plane (aggregates:
// "p99 regressed") and the trace plane (one invocation: "this restore
// stalled 400ms in the loader") — it answers "which invocations, and
// why" without sampling decisions made up front.
package obs

import (
	"sort"
	"sync"
)

// DefaultRing is the default capacity of the profile ring and, shared
// by the daemon's -trace-ring flag, of the trace store: one profile per
// trace keeps the two addressable together — if a profile still exists
// its exemplar trace usually does too.
const DefaultRing = 512

// CacheDelta is the page-cache activity attributable to one
// invocation (a compact projection of pagecache.Stats).
type CacheDelta struct {
	MinorHits      int64 `json:"minor_hits"`
	Misses         int64 `json:"misses"`
	ReadaheadPages int64 `json:"readahead_pages"`
	PopulatedPages int64 `json:"populated_pages"`
}

// PrefetchDelta is one invocation's prefetch-effectiveness measurement
// (see core.PrefetchStats for the definitions).
type PrefetchDelta struct {
	PrefetchedPages int64   `json:"prefetched_pages"`
	UsedPages       int64   `json:"used_pages"`
	HitPages        int64   `json:"hit_pages"`
	Precision       float64 `json:"precision"`
	Recall          float64 `json:"recall"`
	WastedBytes     int64   `json:"wasted_bytes"`
	MissedMajorMs   float64 `json:"missed_major_ms"`
}

// Profile is one invocation's flight record.
type Profile struct {
	// Seq is the ring-assigned sequence number (monotone per daemon).
	Seq uint64 `json:"seq"`
	// UnixMs is the wall-clock completion time in milliseconds.
	UnixMs int64 `json:"unix_ms"`

	Function string `json:"function"`
	Tenant   string `json:"tenant,omitempty"`
	// Mode is what the client asked for; ServedMode what actually ran
	// (they differ on fallback).
	Mode       string `json:"mode,omitempty"`
	ServedMode string `json:"served_mode,omitempty"`
	// Route is the serving endpoint: "invoke" or "burst".
	Route string `json:"route"`
	// TraceID is the exemplar: GET /traces/{id} resolves it to the
	// stitched daemon→VMM→guest trace of this exact invocation.
	TraceID string `json:"trace_id,omitempty"`
	Status  int    `json:"status"`

	// Phase timings in virtual (simulated) milliseconds, matching the
	// paper's measurement plane; WallMs is the real server wall time the
	// SLO engine judges.
	AdmissionMs float64 `json:"admission_ms"`
	SetupMs     float64 `json:"setup_ms"`
	FetchMs     float64 `json:"fetch_ms"`
	ExecMs      float64 `json:"exec_ms"`
	TotalMs     float64 `json:"total_ms"`
	WallMs      float64 `json:"wall_ms"`

	// FaultsByKind counts invocation-phase guest faults by resolution
	// kind (anon/minor/major/uffd/...).
	FaultsByKind map[string]int64 `json:"faults_by_kind,omitempty"`
	MajorFaultMs float64          `json:"major_fault_ms,omitempty"`

	Cache    *CacheDelta    `json:"cache,omitempty"`
	Prefetch *PrefetchDelta `json:"prefetch,omitempty"`

	Retries        int    `json:"retries,omitempty"`
	Degraded       bool   `json:"degraded,omitempty"`
	FallbackMode   string `json:"fallback_mode,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// Ring is a bounded, concurrency-safe profile ring: appends past
// capacity overwrite the oldest record, so memory stays bounded no
// matter how long the daemon runs.
type Ring struct {
	mu   sync.RWMutex
	buf  []*Profile
	head int // index of the oldest record
	n    int
	seq  uint64
}

// NewRing returns a ring retaining up to capacity profiles.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRing
	}
	return &Ring{buf: make([]*Profile, capacity)}
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of retained profiles.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n
}

// Append records p, assigning its sequence number. The ring keeps the
// pointer; callers must not mutate p afterwards.
func (r *Ring) Append(p *Profile) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	p.Seq = r.seq
	if r.n == len(r.buf) {
		r.buf[r.head] = p
		r.head = (r.head + 1) % len(r.buf)
	} else {
		r.buf[(r.head+r.n)%len(r.buf)] = p
		r.n++
	}
}

// Filter selects profiles; zero fields match everything.
type Filter struct {
	Function string
	Mode     string // matches the requested mode
}

func (f Filter) matches(p *Profile) bool {
	if f.Function != "" && p.Function != f.Function {
		return false
	}
	if f.Mode != "" && p.Mode != f.Mode {
		return false
	}
	return true
}

// Query returns matching profiles, newest first, up to limit
// (limit <= 0 returns all matches).
func (r *Ring) Query(f Filter, limit int) []*Profile {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Profile, 0, r.n)
	for i := r.n - 1; i >= 0; i-- {
		p := r.buf[(r.head+i)%len(r.buf)]
		if !f.matches(p) {
			continue
		}
		out = append(out, p)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Slowest returns the n matching profiles with the largest wall time,
// slowest first — the "go from the aggregate to the culprit" query;
// each entry's TraceID is the exemplar hop into the trace store.
func (r *Ring) Slowest(f Filter, n int) []*Profile {
	matches := r.Query(f, 0)
	sort.SliceStable(matches, func(i, j int) bool { return matches[i].WallMs > matches[j].WallMs })
	if n > 0 && n < len(matches) {
		matches = matches[:n]
	}
	return matches
}

// FunctionSummary aggregates one function's profiles server-side.
type FunctionSummary struct {
	Function string `json:"function"`
	Count    int64  `json:"count"`
	Errors   int64  `json:"errors"` // non-2xx outcomes
	Degraded int64  `json:"degraded"`

	P50WallMs float64 `json:"p50_wall_ms"`
	P99WallMs float64 `json:"p99_wall_ms"`
	P50Ms     float64 `json:"p50_total_ms"` // virtual end-to-end
	P99Ms     float64 `json:"p99_total_ms"`

	// Prefetch effectiveness over the invocations that prefetched,
	// count-weighted means plus the summed waste.
	PrefetchCount    int64   `json:"prefetch_count,omitempty"`
	PrefetchPrec     float64 `json:"prefetch_precision,omitempty"`
	PrefetchRecall   float64 `json:"prefetch_recall,omitempty"`
	PrefetchWasteB   int64   `json:"prefetch_wasted_bytes,omitempty"`
	PrefetchMissedMs float64 `json:"prefetch_missed_major_ms,omitempty"`
}

// Summary is the GET /profiles?summary=1 payload: per-function
// aggregates plus totals, mergeable across daemons by the gateway.
type Summary struct {
	Count     int64             `json:"count"`
	Functions []FunctionSummary `json:"functions"`
}

// MergeSummaries combines per-daemon summaries into a cluster view.
// Counted fields sum exactly. Quantiles cannot be merged exactly from
// aggregates: the merged p50 is the count-weighted mean of the shard
// p50s (a central-tendency approximation) and the merged p99 is the
// max across shards (a conservative upper bound on the true cluster
// p99). Prefetch precision/recall merge as count-weighted means.
func MergeSummaries(sums []*Summary) *Summary {
	byFn := make(map[string]*FunctionSummary)
	var order []string
	out := &Summary{}
	for _, s := range sums {
		if s == nil {
			continue
		}
		out.Count += s.Count
		for i := range s.Functions {
			fs := &s.Functions[i]
			agg, ok := byFn[fs.Function]
			if !ok {
				agg = &FunctionSummary{Function: fs.Function}
				byFn[fs.Function] = agg
				order = append(order, fs.Function)
			}
			if fs.Count > 0 {
				total := agg.Count + fs.Count
				agg.P50WallMs = (agg.P50WallMs*float64(agg.Count) + fs.P50WallMs*float64(fs.Count)) / float64(total)
				agg.P50Ms = (agg.P50Ms*float64(agg.Count) + fs.P50Ms*float64(fs.Count)) / float64(total)
			}
			if fs.P99WallMs > agg.P99WallMs {
				agg.P99WallMs = fs.P99WallMs
			}
			if fs.P99Ms > agg.P99Ms {
				agg.P99Ms = fs.P99Ms
			}
			if fs.PrefetchCount > 0 {
				total := agg.PrefetchCount + fs.PrefetchCount
				agg.PrefetchPrec = (agg.PrefetchPrec*float64(agg.PrefetchCount) + fs.PrefetchPrec*float64(fs.PrefetchCount)) / float64(total)
				agg.PrefetchRecall = (agg.PrefetchRecall*float64(agg.PrefetchCount) + fs.PrefetchRecall*float64(fs.PrefetchCount)) / float64(total)
				agg.PrefetchCount = total
			}
			agg.Count += fs.Count
			agg.Errors += fs.Errors
			agg.Degraded += fs.Degraded
			agg.PrefetchWasteB += fs.PrefetchWasteB
			agg.PrefetchMissedMs += fs.PrefetchMissedMs
		}
	}
	sort.Strings(order)
	for _, name := range order {
		out.Functions = append(out.Functions, *byFn[name])
	}
	return out
}

// quantile returns the q-quantile (0..1) of sorted values (nearest
// rank); zero for empty input.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// Summarize aggregates profiles per function.
func Summarize(profiles []*Profile) *Summary {
	byFn := make(map[string][]*Profile)
	for _, p := range profiles {
		byFn[p.Function] = append(byFn[p.Function], p)
	}
	names := make([]string, 0, len(byFn))
	for n := range byFn {
		names = append(names, n)
	}
	sort.Strings(names)
	sum := &Summary{Count: int64(len(profiles))}
	for _, name := range names {
		ps := byFn[name]
		fs := FunctionSummary{Function: name, Count: int64(len(ps))}
		wall := make([]float64, 0, len(ps))
		total := make([]float64, 0, len(ps))
		var precSum, recSum float64
		for _, p := range ps {
			wall = append(wall, p.WallMs)
			total = append(total, p.TotalMs)
			if p.Status/100 != 2 {
				fs.Errors++
			}
			if p.Degraded {
				fs.Degraded++
			}
			if p.Prefetch != nil {
				fs.PrefetchCount++
				precSum += p.Prefetch.Precision
				recSum += p.Prefetch.Recall
				fs.PrefetchWasteB += p.Prefetch.WastedBytes
				fs.PrefetchMissedMs += p.Prefetch.MissedMajorMs
			}
		}
		sort.Float64s(wall)
		sort.Float64s(total)
		fs.P50WallMs = quantile(wall, 0.50)
		fs.P99WallMs = quantile(wall, 0.99)
		fs.P50Ms = quantile(total, 0.50)
		fs.P99Ms = quantile(total, 0.99)
		if fs.PrefetchCount > 0 {
			fs.PrefetchPrec = precSum / float64(fs.PrefetchCount)
			fs.PrefetchRecall = recSum / float64(fs.PrefetchCount)
		}
		sum.Functions = append(sum.Functions, fs)
	}
	return sum
}
