package snapshot

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMemoryFileAllZero(t *testing.T) {
	m := NewMemoryFile(1000)
	if m.ZeroPages() != 1000 || m.NonZeroPages() != 0 {
		t.Fatalf("zero=%d nonzero=%d", m.ZeroPages(), m.NonZeroPages())
	}
	if m.SparseBytes() != 0 {
		t.Fatalf("SparseBytes = %d, want 0", m.SparseBytes())
	}
}

func TestSetZeroAccounting(t *testing.T) {
	m := NewMemoryFile(100)
	m.SetZero(10, false)
	m.SetZero(11, false)
	m.SetZero(10, false) // idempotent
	if m.NonZeroPages() != 2 {
		t.Fatalf("nonzero = %d, want 2", m.NonZeroPages())
	}
	m.SetZero(10, true)
	if m.NonZeroPages() != 1 || m.IsZero(11) {
		t.Fatalf("nonzero = %d, IsZero(11)=%v", m.NonZeroPages(), m.IsZero(11))
	}
	if m.SparseBytes() != PageSize {
		t.Fatalf("SparseBytes = %d", m.SparseBytes())
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := NewMemoryFile(64)
	m.SetZero(5, false)
	c := m.Clone()
	c.SetZero(6, false)
	if m.NonZeroPages() != 1 || c.NonZeroPages() != 2 {
		t.Fatalf("m=%d c=%d", m.NonZeroPages(), c.NonZeroPages())
	}
}

func TestScanRegions(t *testing.T) {
	m := NewMemoryFile(16)
	for _, p := range []int64{3, 4, 5, 9} {
		m.SetZero(p, false)
	}
	rs := m.ScanRegions()
	want := []Region{
		{Start: 0, Len: 3, Zero: true, Group: -1},
		{Start: 3, Len: 3, Zero: false, Group: -1},
		{Start: 6, Len: 3, Zero: true, Group: -1},
		{Start: 9, Len: 1, Zero: false, Group: -1},
		{Start: 10, Len: 6, Zero: true, Group: -1},
	}
	if len(rs) != len(want) {
		t.Fatalf("regions = %+v, want %+v", rs, want)
	}
	for i := range want {
		if rs[i] != want[i] {
			t.Fatalf("region %d = %+v, want %+v", i, rs[i], want[i])
		}
	}
}

func TestNonZeroRegions(t *testing.T) {
	m := NewMemoryFile(16)
	m.SetZero(0, false)
	m.SetZero(15, false)
	rs := m.NonZeroRegions()
	if len(rs) != 2 || rs[0].Start != 0 || rs[1].Start != 15 {
		t.Fatalf("regions = %+v", rs)
	}
}

func TestScanRegionsCoversWholeFile(t *testing.T) {
	m := NewMemoryFile(4096)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		m.SetZero(int64(rng.Intn(4096)), false)
	}
	rs := m.ScanRegions()
	if TotalPages(rs) != 4096 {
		t.Fatalf("regions cover %d pages, want 4096", TotalPages(rs))
	}
	// Regions must alternate and be contiguous.
	for i := 1; i < len(rs); i++ {
		if rs[i].Start != rs[i-1].End() {
			t.Fatalf("gap between regions %d and %d", i-1, i)
		}
		if rs[i].Zero == rs[i-1].Zero {
			t.Fatalf("adjacent regions %d and %d have same kind", i-1, i)
		}
	}
}

func TestMergeRegionsGap(t *testing.T) {
	in := []Region{
		{Start: 0, Len: 10, Group: 2},
		{Start: 20, Len: 5, Group: 1},  // gap 10 <= 32: merge
		{Start: 100, Len: 5, Group: 3}, // gap 75 > 32: separate
	}
	out := MergeRegions(in, 32)
	if len(out) != 2 {
		t.Fatalf("merged = %+v", out)
	}
	if out[0].Start != 0 || out[0].Len != 25 || out[0].Group != 1 {
		t.Fatalf("first merged region = %+v", out[0])
	}
	if out[1].Start != 100 || out[1].Len != 5 || out[1].Group != 3 {
		t.Fatalf("second region = %+v", out[1])
	}
}

func TestMergeRegionsGroupPropagation(t *testing.T) {
	in := []Region{
		{Start: 0, Len: 1, Group: -1},
		{Start: 2, Len: 1, Group: 4},
	}
	out := MergeRegions(in, 32)
	if len(out) != 1 || out[0].Group != 4 {
		t.Fatalf("merged = %+v, want single region with group 4", out)
	}
}

func TestMergeRegionsEmpty(t *testing.T) {
	if MergeRegions(nil, 32) != nil {
		t.Fatal("merge of nil not nil")
	}
}

func TestMergeRegionsReducesCountProperty(t *testing.T) {
	// Property: merging never increases region count, never loses
	// coverage of input pages, and output is sorted/non-overlapping.
	f := func(seed int64, gapSmall bool) bool {
		rng := rand.New(rand.NewSource(seed))
		var in []Region
		pos := int64(0)
		for i := 0; i < 50; i++ {
			pos += int64(rng.Intn(64)) + 1 // gap >= 1
			l := int64(rng.Intn(16)) + 1
			in = append(in, Region{Start: pos, Len: l, Group: rng.Intn(8)})
			pos += l
		}
		maxGap := int64(4)
		if gapSmall {
			maxGap = 32
		}
		out := MergeRegions(in, maxGap)
		if len(out) > len(in) {
			return false
		}
		if TotalPages(out) < TotalPages(in) {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i].Start < out[i-1].End() {
				return false
			}
			if out[i].Start-out[i-1].End() <= maxGap {
				return false // should have been merged
			}
		}
		// Every input page must be covered by some output region.
		for _, r := range in {
			covered := false
			for _, o := range out {
				if r.Start >= o.Start && r.End() <= o.End() {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeRegionsPanicsOnOverlap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MergeRegions([]Region{{Start: 0, Len: 10}, {Start: 5, Len: 10}}, 0)
}

func TestVMState(t *testing.T) {
	s := NewVMState()
	if s.Bytes <= 0 {
		t.Fatal("VM state has no size")
	}
}

func TestZeroScanProperty(t *testing.T) {
	// Property: for any set of non-zero pages, ScanRegions classifies
	// every page correctly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMemoryFile(512)
		want := make(map[int64]bool)
		for i := 0; i < 100; i++ {
			p := int64(rng.Intn(512))
			m.SetZero(p, false)
			want[p] = true
		}
		for _, r := range m.ScanRegions() {
			for p := r.Start; p < r.End(); p++ {
				if want[p] == r.Zero {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
