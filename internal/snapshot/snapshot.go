// Package snapshot models Firecracker snapshot artifacts: the VM state
// file (device and vCPU state) and the guest memory file, which is a
// page-granular copy of guest physical memory. The memory file tracks
// which pages are zero — the property FaaSnap's per-region memory
// mapping exploits to turn guest anonymous-page faults into host
// anonymous faults instead of disk reads (§4.5).
package snapshot

import (
	"fmt"

	"faasnap/internal/pagecache"
)

// PageSize re-exports the page size for convenience.
const PageSize = pagecache.PageSize

// MemoryFile is the page map of a snapshot's guest memory file.
type MemoryFile struct {
	Pages int64
	zero  []uint64 // bitset: 1 = page is all zeroes
	nzero int64

	// Backing is the page-cache handle once the file has been placed
	// on a device; nil for files not yet materialized.
	Backing *pagecache.File
}

// NewMemoryFile returns a memory file of the given page count with
// every page zero (fresh guest memory).
func NewMemoryFile(pages int64) *MemoryFile {
	if pages <= 0 {
		panic("snapshot: memory file must have pages")
	}
	m := &MemoryFile{
		Pages: pages,
		zero:  make([]uint64, (pages+63)/64),
	}
	for i := range m.zero {
		m.zero[i] = ^uint64(0)
	}
	m.nzero = pages
	return m
}

func (m *MemoryFile) check(page int64) {
	if page < 0 || page >= m.Pages {
		panic(fmt.Sprintf("snapshot: page %d outside memory file of %d pages", page, m.Pages))
	}
}

// IsZero reports whether page is all zeroes.
func (m *MemoryFile) IsZero(page int64) bool {
	m.check(page)
	return m.zero[page/64]&(1<<(uint(page)%64)) != 0
}

// SetZero marks page as zero or non-zero.
func (m *MemoryFile) SetZero(page int64, z bool) {
	m.check(page)
	w := &m.zero[page/64]
	bit := uint64(1) << (uint(page) % 64)
	was := *w&bit != 0
	if was == z {
		return
	}
	if z {
		*w |= bit
		m.nzero++
	} else {
		*w &^= bit
		m.nzero--
	}
}

// ZeroPages returns the number of zero pages.
func (m *MemoryFile) ZeroPages() int64 { return m.nzero }

// NonZeroPages returns the number of non-zero pages.
func (m *MemoryFile) NonZeroPages() int64 { return m.Pages - m.nzero }

// SparseBytes returns the on-disk size when stored as a sparse file
// (zero pages occupy no blocks), per the paper's §7.2 storage-cost
// discussion.
func (m *MemoryFile) SparseBytes() int64 { return m.NonZeroPages() * PageSize }

// Clone returns a deep copy of the page map (the new snapshot taken
// after the record-phase invocation).
func (m *MemoryFile) Clone() *MemoryFile {
	n := &MemoryFile{
		Pages: m.Pages,
		zero:  append([]uint64(nil), m.zero...),
		nzero: m.nzero,
	}
	return n
}

// Region is a run of consecutive guest pages of one kind.
type Region struct {
	Start int64 // first page
	Len   int64 // page count
	Zero  bool  // all pages zero
	Group int   // working-set group (lowest group of any page), -1 if none
}

// End returns the first page after the region.
func (r Region) End() int64 { return r.Start + r.Len }

// ScanRegions walks the memory file and merges consecutive pages of
// the same zero/non-zero kind into regions, as the FaaSnap daemon does
// after the record phase ("FaaSnap scans the guest memory file, merging
// consecutive zero pages into zero regions and non-zero pages into
// non-zero regions", §4.5).
func (m *MemoryFile) ScanRegions() []Region {
	var out []Region
	var cur Region
	cur.Group = -1
	for p := int64(0); p < m.Pages; p++ {
		z := m.IsZero(p)
		if cur.Len > 0 && cur.Zero == z {
			cur.Len++
			continue
		}
		if cur.Len > 0 {
			out = append(out, cur)
		}
		cur = Region{Start: p, Len: 1, Zero: z, Group: -1}
	}
	if cur.Len > 0 {
		out = append(out, cur)
	}
	return out
}

// NonZeroRegions returns only the non-zero regions of the file.
func (m *MemoryFile) NonZeroRegions() []Region {
	all := m.ScanRegions()
	out := all[:0]
	for _, r := range all {
		if !r.Zero {
			out = append(out, r)
		}
	}
	return out
}

// MergeRegions merges regions whose gaps are at most maxGap pages,
// extending coverage over the in-between pages. The paper uses a
// 32-page threshold to cut the number of loading-set mappings from
// >1000 to <100 for hello-world while adding ~5% extra data (§4.6).
// The input must be sorted by Start and non-overlapping. The merged
// region keeps the lowest (non-negative) group number of its parts.
func MergeRegions(regions []Region, maxGap int64) []Region {
	if len(regions) == 0 {
		return nil
	}
	out := make([]Region, 0, len(regions))
	cur := regions[0]
	for _, r := range regions[1:] {
		if r.Start < cur.End() {
			panic("snapshot: MergeRegions input overlaps or is unsorted")
		}
		if r.Start-cur.End() <= maxGap {
			cur.Len = r.End() - cur.Start
			cur.Group = minGroup(cur.Group, r.Group)
			continue
		}
		out = append(out, cur)
		cur = r
	}
	return append(out, cur)
}

func minGroup(a, b int) int {
	switch {
	case a < 0:
		return b
	case b < 0:
		return a
	case a < b:
		return a
	default:
		return b
	}
}

// TotalPages sums the page counts of regions.
func TotalPages(regions []Region) int64 {
	var n int64
	for _, r := range regions {
		n += r.Len
	}
	return n
}

// VMState is the non-memory part of a snapshot: virtual device and
// vCPU state. Its size is small and restoring it takes milliseconds.
type VMState struct {
	Bytes int64
}

// NewVMState returns a VM state blob of a typical size.
func NewVMState() VMState { return VMState{Bytes: 128 * 1024} }

// Snapshot bundles the artifacts of one snapshot of one function VM.
type Snapshot struct {
	ID       string
	Function string
	Mem      *MemoryFile
	State    VMState
	// Generation increments every time a new snapshot replaces this
	// function's previous one.
	Generation int
}
