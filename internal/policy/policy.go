// Package policy implements the serving-policy analysis of the paper's
// §7.1 discussion: when should a platform serve an invocation from a
// warm VM, from a snapshot, or with a cold boot? It generates
// invocation arrival processes shaped like the Azure traces the paper
// cites (most functions invoked less than hourly, a small head invoked
// every minute, occasional bursts), simulates a keep-alive + snapshot
// policy over them with per-mode start costs measured from the core
// simulator, and accounts start latency against warm-pool memory and
// snapshot storage.
package policy

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Arrivals is a sorted sequence of invocation times from t=0.
type Arrivals []time.Duration

// TraceSpec describes an arrival process.
type TraceSpec struct {
	// MeanInterarrival is the average gap between invocations.
	MeanInterarrival time.Duration
	// Horizon is the trace length.
	Horizon time.Duration
	// BurstProb is the probability that an arrival is a burst of
	// BurstSize near-simultaneous invocations (Azure's
	// burst-parallelism pattern, §6.6).
	BurstProb float64
	BurstSize int
	Seed      int64
}

// Generate produces a Poisson arrival trace (with optional bursts)
// deterministically from the spec's seed.
func Generate(spec TraceSpec) Arrivals {
	if spec.MeanInterarrival <= 0 || spec.Horizon <= 0 {
		panic("policy: trace spec needs positive mean interarrival and horizon")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	var out Arrivals
	t := time.Duration(0)
	for {
		gap := time.Duration(rng.ExpFloat64() * float64(spec.MeanInterarrival))
		t += gap
		if t >= spec.Horizon {
			break
		}
		n := 1
		if spec.BurstSize > 1 && rng.Float64() < spec.BurstProb {
			n = spec.BurstSize
		}
		for i := 0; i < n; i++ {
			// Burst members arrive within a millisecond of each other.
			out = append(out, t+time.Duration(i)*time.Millisecond)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ParseTrace reads an arrival trace from r: one arrival per line as
// milliseconds since trace start (comments with '#' and blank lines
// ignored). This is the import path for real invocation logs such as
// the Azure Functions traces the paper cites [29].
func ParseTrace(r io.Reader) (Arrivals, error) {
	var out Arrivals
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		ms, err := strconv.ParseFloat(text, 64)
		if err != nil || ms < 0 {
			return nil, fmt.Errorf("policy: bad arrival on line %d: %q", line, text)
		}
		out = append(out, time.Duration(ms*float64(time.Millisecond)))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// WriteTrace writes arrivals in the ParseTrace format.
func WriteTrace(w io.Writer, arr Arrivals) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# one arrival per line, milliseconds since trace start")
	for _, at := range arr {
		fmt.Fprintf(bw, "%.3f\n", float64(at)/float64(time.Millisecond))
	}
	return bw.Flush()
}

// Costs are the per-mode serving costs for one function, measured from
// the data-plane simulator.
type Costs struct {
	// Start latencies: the extra time before the function runs,
	// relative to a warm invocation.
	WarmStart     time.Duration // ≈0: the environment exists
	SnapshotStart time.Duration // snapshot restore penalty
	ColdStart     time.Duration // boot + init penalty
	// Exec is the function execution time once started.
	Exec time.Duration
	// WarmRSSBytes is the memory a warm VM holds while kept alive.
	WarmRSSBytes int64
	// SnapshotBytes is the storage a snapshot occupies.
	SnapshotBytes int64
}

// Policy is a serving policy.
type Policy struct {
	Name string
	// KeepAlive is how long an idle warm VM is retained (AWS Lambda:
	// 15–60 minutes, §2.1). Zero disables warm retention.
	KeepAlive time.Duration
	// UseSnapshot serves non-warm invocations from a snapshot instead
	// of a cold boot (a snapshot exists after the first invocation).
	UseSnapshot bool
}

// StartKind classifies how an invocation was served.
type StartKind int

const (
	// WarmStart reused an idle warm VM.
	WarmStart StartKind = iota
	// SnapshotStart restored a snapshot.
	SnapshotStart
	// ColdStart booted and initialized a fresh VM.
	ColdStart
)

// String returns the kind name.
func (k StartKind) String() string {
	switch k {
	case WarmStart:
		return "warm"
	case SnapshotStart:
		return "snapshot"
	case ColdStart:
		return "cold"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Result summarizes a simulated trace.
type Result struct {
	Invocations int
	Starts      [3]int // by StartKind

	MeanStartLatency time.Duration
	P95StartLatency  time.Duration

	// WarmGBHours integrates warm-VM residency (busy + idle until
	// eviction) over the horizon.
	WarmGBHours float64
	// SnapshotGBHours integrates snapshot storage held.
	SnapshotGBHours float64
	// MaxPoolSize is the largest number of simultaneously live VMs.
	MaxPoolSize int
}

// StartFraction returns the fraction of invocations served by kind k.
func (r Result) StartFraction(k StartKind) float64 {
	if r.Invocations == 0 {
		return 0
	}
	return float64(r.Starts[k]) / float64(r.Invocations)
}

// vm is one pooled VM in the policy simulation.
type vm struct {
	freeAt  time.Duration // finishes its current invocation at this time
	expires time.Duration // idle eviction deadline
	started time.Duration // when it came alive (for residency accounting)
}

// Simulate runs the policy over the arrivals with the given costs.
// Each invocation is served by an idle warm VM when one exists,
// otherwise by a snapshot restore (if enabled and a snapshot exists —
// i.e. any invocation has completed before) or a cold boot.
func Simulate(arrivals Arrivals, pol Policy, costs Costs, horizon time.Duration) Result {
	var res Result
	var pool []*vm
	var latencies []time.Duration
	var warmSeconds float64 // byte-seconds of warm residency
	snapshotAt := time.Duration(-1)
	firstDone := time.Duration(-1)

	for _, t := range arrivals {
		res.Invocations++
		// Evict idle VMs whose keep-alive lapsed before t.
		alive := pool[:0]
		for _, v := range pool {
			if v.freeAt <= t && v.expires <= t {
				warmSeconds += float64(costs.WarmRSSBytes) * (v.expires - v.started).Seconds()
				continue
			}
			alive = append(alive, v)
		}
		pool = alive

		// Pick the warm VM that has been idle longest.
		var pick *vm
		for _, v := range pool {
			if v.freeAt <= t && (pick == nil || v.freeAt < pick.freeAt) {
				pick = v
			}
		}
		var start time.Duration
		var kind StartKind
		switch {
		case pick != nil:
			kind = WarmStart
			start = costs.WarmStart
		case pol.UseSnapshot && firstDone >= 0 && firstDone <= t:
			kind = SnapshotStart
			start = costs.SnapshotStart
		default:
			kind = ColdStart
			start = costs.ColdStart
		}
		res.Starts[kind]++
		latencies = append(latencies, start)

		finish := t + start + costs.Exec
		if pick != nil {
			pick.freeAt = finish
			pick.expires = finish + pol.KeepAlive
		} else {
			pool = append(pool, &vm{started: t, freeAt: finish, expires: finish + pol.KeepAlive})
		}
		if len(pool) > res.MaxPoolSize {
			res.MaxPoolSize = len(pool)
		}
		if firstDone < 0 || finish < firstDone {
			firstDone = finish
			if snapshotAt < 0 {
				snapshotAt = finish
			}
		}
	}
	// Account residual residency at the horizon.
	for _, v := range pool {
		end := v.expires
		if end > horizon {
			end = horizon
		}
		if end > v.started {
			warmSeconds += float64(costs.WarmRSSBytes) * (end - v.started).Seconds()
		}
	}
	res.WarmGBHours = warmSeconds / (1 << 30) / 3600
	if pol.UseSnapshot && snapshotAt >= 0 && horizon > snapshotAt {
		res.SnapshotGBHours = float64(costs.SnapshotBytes) * (horizon - snapshotAt).Seconds() / (1 << 30) / 3600
	}

	if len(latencies) > 0 {
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		res.MeanStartLatency = sum / time.Duration(len(latencies))
		sorted := append([]time.Duration(nil), latencies...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		idx := int(math.Ceil(0.95*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		res.P95StartLatency = sorted[idx]
	}
	return res
}
