package policy

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func spec(mean, horizon time.Duration) TraceSpec {
	return TraceSpec{MeanInterarrival: mean, Horizon: horizon, Seed: 7}
}

func TestGenerateSortedWithinHorizon(t *testing.T) {
	arr := Generate(spec(time.Minute, time.Hour))
	if len(arr) == 0 {
		t.Fatal("empty trace")
	}
	for i, a := range arr {
		if a < 0 || a >= time.Hour+time.Second {
			t.Fatalf("arrival %d = %v outside horizon", i, a)
		}
		if i > 0 && a < arr[i-1] {
			t.Fatal("unsorted arrivals")
		}
	}
	// Poisson with mean 1/min over an hour: roughly 60 arrivals.
	if len(arr) < 30 || len(arr) > 120 {
		t.Fatalf("arrivals = %d, want ≈60", len(arr))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(spec(time.Minute, time.Hour))
	b := Generate(spec(time.Minute, time.Hour))
	if len(a) != len(b) {
		t.Fatal("nondeterministic trace length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic arrivals")
		}
	}
}

func TestGenerateBursts(t *testing.T) {
	s := spec(time.Minute, time.Hour)
	s.BurstProb = 1.0
	s.BurstSize = 8
	arr := Generate(s)
	if len(arr)%8 != 0 {
		t.Fatalf("arrivals = %d, want multiple of burst size", len(arr))
	}
}

func testCosts() Costs {
	return Costs{
		WarmStart:     0,
		SnapshotStart: 70 * time.Millisecond,
		ColdStart:     900 * time.Millisecond,
		Exec:          100 * time.Millisecond,
		WarmRSSBytes:  256 << 20,
		SnapshotBytes: 120 << 20,
	}
}

func TestFrequentFunctionStaysWarm(t *testing.T) {
	arr := Generate(spec(30*time.Second, time.Hour))
	res := Simulate(arr, Policy{KeepAlive: 15 * time.Minute, UseSnapshot: true}, testCosts(), time.Hour)
	if res.Starts[ColdStart] != 1 {
		t.Fatalf("cold starts = %d, want exactly the first", res.Starts[ColdStart])
	}
	if res.StartFraction(WarmStart) < 0.9 {
		t.Fatalf("warm fraction = %v, want >= 0.9 for a frequent function", res.StartFraction(WarmStart))
	}
}

func TestRareFunctionUsesSnapshots(t *testing.T) {
	// Invoked every ~30 minutes with a 15-minute keep-alive: warm VMs
	// always expire; snapshots absorb what would be cold starts.
	arr := Generate(spec(30*time.Minute, 24*time.Hour))
	withSnap := Simulate(arr, Policy{KeepAlive: 15 * time.Minute, UseSnapshot: true}, testCosts(), 24*time.Hour)
	without := Simulate(arr, Policy{KeepAlive: 15 * time.Minute, UseSnapshot: false}, testCosts(), 24*time.Hour)
	if withSnap.Starts[ColdStart] > 1 {
		t.Fatalf("cold starts with snapshots = %d, want 1", withSnap.Starts[ColdStart])
	}
	if without.Starts[ColdStart] < len(arr)/2 {
		t.Fatalf("cold starts without snapshots = %d of %d, want most", without.Starts[ColdStart], len(arr))
	}
	if withSnap.P95StartLatency >= without.P95StartLatency {
		t.Fatalf("snapshot p95 (%v) not below cold p95 (%v)", withSnap.P95StartLatency, without.P95StartLatency)
	}
}

func TestKeepAliveCostsMemory(t *testing.T) {
	arr := Generate(spec(10*time.Minute, 24*time.Hour))
	long := Simulate(arr, Policy{KeepAlive: 60 * time.Minute}, testCosts(), 24*time.Hour)
	short := Simulate(arr, Policy{KeepAlive: time.Minute}, testCosts(), 24*time.Hour)
	if long.WarmGBHours <= short.WarmGBHours {
		t.Fatalf("longer keep-alive (%v GBh) not more memory than shorter (%v GBh)",
			long.WarmGBHours, short.WarmGBHours)
	}
	if long.StartFraction(WarmStart) <= short.StartFraction(WarmStart) {
		t.Fatal("longer keep-alive did not increase warm hits")
	}
}

func TestSnapshotStorageAccounted(t *testing.T) {
	arr := Generate(spec(time.Hour, 24*time.Hour))
	res := Simulate(arr, Policy{KeepAlive: 15 * time.Minute, UseSnapshot: true}, testCosts(), 24*time.Hour)
	if res.SnapshotGBHours <= 0 {
		t.Fatal("no snapshot storage accounted")
	}
	// ~120 MB held for ~24h ≈ 2.8 GBh.
	if res.SnapshotGBHours > 3.5 {
		t.Fatalf("snapshot GBh = %v, too large", res.SnapshotGBHours)
	}
}

func TestBurstGrowsPool(t *testing.T) {
	s := spec(time.Minute, time.Hour)
	s.BurstProb = 0.2
	s.BurstSize = 16
	arr := Generate(s)
	res := Simulate(arr, Policy{KeepAlive: 15 * time.Minute, UseSnapshot: true}, testCosts(), time.Hour)
	if res.MaxPoolSize < 16 {
		t.Fatalf("max pool = %d, want >= burst size", res.MaxPoolSize)
	}
}

func TestStartKindString(t *testing.T) {
	if WarmStart.String() != "warm" || SnapshotStart.String() != "snapshot" || ColdStart.String() != "cold" {
		t.Fatal("bad kind strings")
	}
}

func TestSimulateInvariants(t *testing.T) {
	// Property: starts sum to invocations; fractions in [0,1]; first
	// invocation is never warm.
	f := func(seed int64, meanMinutes uint8, keepMinutes uint8, useSnap bool) bool {
		mean := time.Duration(meanMinutes%60+1) * time.Minute
		s := TraceSpec{MeanInterarrival: mean, Horizon: 12 * time.Hour, Seed: seed}
		arr := Generate(s)
		if len(arr) == 0 {
			return true
		}
		pol := Policy{KeepAlive: time.Duration(keepMinutes%90) * time.Minute, UseSnapshot: useSnap}
		res := Simulate(arr, pol, testCosts(), 12*time.Hour)
		if res.Invocations != len(arr) {
			return false
		}
		if res.Starts[WarmStart]+res.Starts[SnapshotStart]+res.Starts[ColdStart] != res.Invocations {
			return false
		}
		if res.Starts[ColdStart] < 1 {
			return false // the very first start cannot be warm or snapshot
		}
		if !useSnap && res.Starts[SnapshotStart] != 0 {
			return false
		}
		if res.WarmGBHours < 0 || res.SnapshotGBHours < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroKeepAliveNeverWarm(t *testing.T) {
	arr := Generate(spec(time.Minute, time.Hour))
	res := Simulate(arr, Policy{KeepAlive: 0, UseSnapshot: true}, testCosts(), time.Hour)
	if res.Starts[WarmStart] != 0 {
		t.Fatalf("warm starts = %d with zero keep-alive", res.Starts[WarmStart])
	}
}

func TestTraceRoundTrip(t *testing.T) {
	arr := Generate(spec(time.Minute, time.Hour))
	var buf bytes.Buffer
	if err := WriteTrace(&buf, arr); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(arr) {
		t.Fatalf("round trip lost arrivals: %d vs %d", len(back), len(arr))
	}
	for i := range arr {
		diff := back[i] - arr[i]
		if diff < 0 {
			diff = -diff
		}
		if diff > time.Millisecond {
			t.Fatalf("arrival %d drifted: %v vs %v", i, back[i], arr[i])
		}
	}
}

func TestParseTraceFormat(t *testing.T) {
	in := "# header\n\n100\n50.5\n  200  \n"
	arr, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := Arrivals{50500 * time.Microsecond, 100 * time.Millisecond, 200 * time.Millisecond}
	if len(arr) != 3 {
		t.Fatalf("arrivals = %v", arr)
	}
	for i := range want {
		if arr[i] != want[i] {
			t.Fatalf("arrivals = %v, want %v (sorted)", arr, want)
		}
	}
}

func TestParseTraceRejectsGarbage(t *testing.T) {
	for _, in := range []string{"abc\n", "-5\n", "1e999\n"} {
		if _, err := ParseTrace(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestParsedTraceDrivesSimulation(t *testing.T) {
	arr, err := ParseTrace(strings.NewReader("0\n60000\n120000\n"))
	if err != nil {
		t.Fatal(err)
	}
	res := Simulate(arr, Policy{KeepAlive: 10 * time.Minute}, testCosts(), time.Hour)
	if res.Invocations != 3 || res.Starts[WarmStart] != 2 {
		t.Fatalf("result = %+v", res)
	}
}
