// Package crashtest is an end-to-end crash-consistency harness for the
// FaaSnap daemon. Unlike the in-process daemon tests, it builds the
// real faasnapd binary, runs it as a subprocess over a persistent
// state directory, kills it — at armed crashpoints (internal/chaos),
// at seeded random offsets, and with SIGTERM mid-write — restarts it,
// and asserts the recovery contract from RESILIENCE.md:
//
//   - every acknowledged write survives the restart,
//   - every unacknowledged write is absent or quarantined,
//   - corrupt or orphaned state is never served.
//
// The harness lives in a non-test file so `go build ./...` keeps it
// compiling; the scenarios themselves are in the _test files.
package crashtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"faasnap/internal/chaos"
)

// daemonBin is the faasnapd binary under test, built once by TestMain.
var daemonBin string

// httpClient is shared by every node. The timeout bounds how long a
// driver op can hang on a daemon that died mid-reply.
var httpClient = &http.Client{Timeout: 10 * time.Second}

// logBuffer collects a subprocess's stderr. exec.Cmd writes to it from
// an internal goroutine, so reads (on test failure) must lock too.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// node is one faasnapd subprocess serving a state directory. done is
// closed when the process exits (waitErr holds the Wait result), so
// any number of readers can observe the exit.
type node struct {
	addr    string
	state   string
	cmd     *exec.Cmd
	done    chan struct{}
	waitErr error
	logs    *logBuffer
}

// startNode spawns faasnapd over state. A non-empty crashpoint spec
// ("point" or "point:N") is armed via FAASNAP_CRASHPOINT, so the
// process SIGKILLs itself at that write-path boundary.
func startNode(t *testing.T, state, crashpoint string) *node {
	t.Helper()
	if daemonBin == "" {
		t.Fatal("daemonBin not built; is TestMain wired?")
	}
	n := &node{
		addr:  freeAddr(t),
		state: state,
		done:  make(chan struct{}),
		logs:  &logBuffer{},
	}
	n.cmd = exec.Command(daemonBin, "-listen", n.addr, "-state", state, "-quiet-http")
	n.cmd.Stderr = n.logs
	n.cmd.Stdout = n.logs
	env := os.Environ()
	if crashpoint != "" {
		env = append(env, chaos.EnvCrashpoint+"="+crashpoint)
	}
	n.cmd.Env = env
	if err := n.cmd.Start(); err != nil {
		t.Fatalf("start faasnapd: %v", err)
	}
	go func() {
		n.waitErr = n.cmd.Wait()
		close(n.done)
	}()
	t.Cleanup(func() {
		n.kill()
		select {
		case <-n.done:
		case <-time.After(5 * time.Second):
		}
	})
	return n
}

// kill delivers SIGKILL; safe to call on an already-dead process.
func (n *node) kill() { _ = n.cmd.Process.Kill() }

// terminate delivers SIGTERM, the graceful drain path.
func (n *node) terminate() { _ = n.cmd.Process.Signal(syscall.SIGTERM) }

// waitReady polls /readyz until it answers 200 — through the 503
// "recovering" phase async recovery serves during manifest replay.
func (n *node) waitReady(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := httpClient.Get(n.url("/readyz"))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		select {
		case <-n.done:
			t.Fatalf("faasnapd exited before ready: %v\nlogs:\n%s", n.waitErr, n.logs.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	n.kill()
	t.Fatalf("faasnapd not ready within deadline\nlogs:\n%s", n.logs.String())
}

// waitExit waits for the subprocess to die (crashpoint, kill, or
// drain); the harness treats a still-alive daemon as a failed kill.
func (n *node) waitExit(t *testing.T, timeout time.Duration) {
	t.Helper()
	select {
	case <-n.done:
	case <-time.After(timeout):
		n.kill()
		t.Fatalf("faasnapd still alive after %v (crashpoint never fired?)\nlogs:\n%s",
			timeout, n.logs.String())
	}
}

func (n *node) url(path string) string { return "http://" + n.addr + path }

// do issues one API call. The error return means the call never got a
// response — the process died under it, so its outcome is unknown.
func (n *node) do(method, path string, body any) (int, error) {
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, n.url(path), rd)
	if err != nil {
		return 0, err
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil
}

func (n *node) put(fn string) (int, error) {
	return n.do("PUT", "/functions/"+fn, nil)
}

func (n *node) record(fn, input string) (int, error) {
	return n.do("POST", "/functions/"+fn+"/record", map[string]string{"input": input})
}

func (n *node) invoke(fn, input string) (int, error) {
	return n.do("POST", "/functions/"+fn+"/invoke",
		map[string]string{"mode": "faasnap", "input": input})
}

func (n *node) delete(fn string) (int, error) {
	return n.do("DELETE", "/functions/"+fn, nil)
}

// fnInfo is the slice of the GET /functions/{name} response the
// harness asserts on.
type fnInfo struct {
	HasSnapshot bool `json:"has_snapshot"`
}

// getFn fetches a function's info; status 0 means the call errored.
func (n *node) getFn(t *testing.T, fn string) (fnInfo, int) {
	t.Helper()
	resp, err := httpClient.Get(n.url("/functions/" + fn))
	if err != nil {
		return fnInfo{}, 0
	}
	defer resp.Body.Close()
	var info fnInfo
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatalf("decode %s info: %v", fn, err)
		}
	}
	return info, resp.StatusCode
}

// freeAddr reserves a loopback port by binding and releasing it.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// requireNoTempFiles asserts no snapfile or journal temp files leaked
// into the state tree — every crash or drain path must either commit
// (rename) or be swept on recovery.
func requireNoTempFiles(t *testing.T, state string) {
	t.Helper()
	var leaked []string
	err := filepath.WalkDir(state, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".tmp") {
			leaked = append(leaked, path)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk state dir: %v", err)
	}
	if len(leaked) > 0 {
		t.Fatalf("temp files leaked past recovery: %v", leaked)
	}
}

// snapPath is the committed snapfile location for fn.
func snapPath(state, fn string) string {
	return filepath.Join(state, fn+".snap")
}

// quarantinePath is where the first quarantined copy of fn's snapfile
// lands.
func quarantinePath(state, fn string) string {
	return filepath.Join(state, "quarantine", fn+".snap")
}

func exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// chunkCount counts committed chunk files in the state dir's
// content-addressed store (local tier), temp files excluded.
func chunkCount(t *testing.T, state string) int {
	t.Helper()
	n := 0
	root := filepath.Join(state, "cas", "chunks")
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if !d.IsDir() && !strings.HasSuffix(d.Name(), ".tmp") {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk chunk store: %v", err)
	}
	return n
}

// buildDaemon compiles faasnapd into dir and points daemonBin at it.
// Called once from TestMain.
func buildDaemon(dir string) error {
	bin := filepath.Join(dir, "faasnapd")
	cmd := exec.Command("go", "build", "-o", bin, "faasnap/cmd/faasnapd")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("go build faasnapd: %v\n%s", err, out)
	}
	daemonBin = bin
	return nil
}
