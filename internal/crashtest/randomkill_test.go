package crashtest

// Seeded random-offset SIGKILLs and the graceful-drain satellite.
//
// The random-kill test runs many rounds of real daemon subprocesses
// over ONE persistent state directory. Each round a driver issues
// random register/record/invoke/delete ops while a timer SIGKILLs the
// daemon at a seeded random offset — so the process dies at arbitrary
// byte boundaries in the journal and snapfile write paths, not just at
// the named crashpoints. A tri-state model tracks what each op's
// acknowledgement promised; after every restart the invariants are:
// acked state survives exactly, in-flight state lands on either side
// but never half-way, and a snapshot the daemon claims is deployable
// actually invokes.

import (
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"faasnap/internal/snapfile"
)

// tri is an acknowledgement-tracking truth value. maybe covers ops
// that were in flight when the process died: the write is allowed on
// either side of the crash, just never half-applied.
type tri int

const (
	triNo tri = iota
	triYes
	triMaybe
)

type fnExpect struct {
	present tri
	snap    tri
}

const (
	opRegister = iota
	opRecord
	opInvoke
	opDelete
	opCount
)

// applyAck folds an acknowledged (2xx) op into the expected state.
func (e *fnExpect) applyAck(op int) {
	switch op {
	case opRegister:
		e.present = triYes
	case opRecord:
		e.present, e.snap = triYes, triYes
	case opInvoke:
		// A 200 invoke proves a deployed snapshot existed.
		e.present, e.snap = triYes, triYes
	case opDelete:
		e.present, e.snap = triNo, triNo
	}
}

// applyInflight folds an op whose reply never arrived — the daemon
// died under it, so any acked-only guarantee widens to maybe.
func (e *fnExpect) applyInflight(op int) {
	switch op {
	case opRegister:
		if e.present != triYes {
			e.present = triMaybe
		}
	case opRecord:
		// A re-record of an acked snapshot leaves *some* complete
		// snapshot either way; only a first record is uncertain.
		if e.present == triYes && e.snap != triYes {
			e.snap = triMaybe
		}
	case opDelete:
		if e.present != triNo {
			e.present, e.snap = triMaybe, triMaybe
		}
	}
}

// verifyAndAnchor checks one function's recovered state against the
// model, then collapses the model to what the daemon actually serves
// so the next round starts from ground truth.
func (e *fnExpect) verifyAndAnchor(t *testing.T, n *node, fn string, round int) {
	t.Helper()
	info, st := n.getFn(t, fn)
	switch st {
	case http.StatusOK:
		if e.present == triNo {
			t.Fatalf("round %d: %s present after restart but was never acked", round, fn)
		}
		if info.HasSnapshot {
			if e.snap == triNo {
				t.Fatalf("round %d: %s serves a snapshot that was never acked", round, fn)
			}
			// Never serve corrupt: a claimed snapshot must invoke.
			if ist, err := n.invoke(fn, "B"); err != nil || ist != http.StatusOK {
				t.Fatalf("round %d: %s claims a snapshot but invoke = %d, %v", round, fn, ist, err)
			}
			e.snap = triYes
		} else {
			if e.snap == triYes {
				t.Fatalf("round %d: %s lost an acked snapshot", round, fn)
			}
			if ist, err := n.invoke(fn, "B"); err != nil || ist != http.StatusNotFound {
				t.Fatalf("round %d: %s has no snapshot but invoke = %d, %v", round, fn, ist, err)
			}
			e.snap = triNo
		}
		e.present = triYes
	case http.StatusNotFound:
		if e.present == triYes {
			t.Fatalf("round %d: %s lost an acked registration", round, fn)
		}
		if e.snap == triYes {
			t.Fatalf("round %d: %s lost an acked snapshot (function gone)", round, fn)
		}
		e.present, e.snap = triNo, triNo
	default:
		t.Fatalf("round %d: get %s = %d", round, fn, st)
	}
}

func TestRandomKillInvariants(t *testing.T) {
	const rounds = 22 // ≥20 random offsets, per the harness contract
	rng := rand.New(rand.NewSource(0xFAA5))
	state := t.TempDir()
	fns := []string{"hello-world", "json"}
	expect := map[string]*fnExpect{}
	for _, f := range fns {
		expect[f] = &fnExpect{}
	}

	for round := 0; round < rounds; round++ {
		n := startNode(t, state, "")
		n.waitReady(t)

		// The kill lands at a random offset into the op stream; the
		// offsets are seeded, so a failure replays identically.
		delay := time.Duration(2+rng.Intn(60)) * time.Millisecond
		timer := time.AfterFunc(delay, n.kill)

		for {
			f := fns[rng.Intn(len(fns))]
			op := rng.Intn(opCount)
			var st int
			var err error
			switch op {
			case opRegister:
				st, err = n.put(f)
			case opRecord:
				st, err = n.record(f, "A")
			case opInvoke:
				st, err = n.invoke(f, "B")
			case opDelete:
				st, err = n.delete(f)
			}
			if err != nil {
				expect[f].applyInflight(op)
				break
			}
			if st/100 == 2 {
				expect[f].applyAck(op)
			}
		}
		n.waitExit(t, 10*time.Second)
		timer.Stop()

		restarted := startNode(t, state, "")
		restarted.waitReady(t)
		requireNoTempFiles(t, state)
		for _, f := range fns {
			expect[f].verifyAndAnchor(t, restarted, f, round)
		}
		// The restarted daemon is killed while idle (durable state only)
		// so the next round starts from exactly what was verified.
		restarted.kill()
		restarted.waitExit(t, 5*time.Second)
	}
}

// TestSIGTERMMidRecordDrainsCleanly is the graceful-shutdown
// counterpart: SIGTERM during a record must drain the in-flight
// commit, leave no temp files, and leave only snapfiles that verify
// end to end. If the client got the 200, the snapshot must still be
// there after restart.
func TestSIGTERMMidRecordDrainsCleanly(t *testing.T) {
	state := t.TempDir()
	n := startNode(t, state, "")
	n.waitReady(t)
	if st, err := n.put(fn); err != nil || st != http.StatusOK {
		t.Fatalf("register = %d, %v", st, err)
	}

	type reply struct {
		status int
		err    error
	}
	replies := make(chan reply, 1)
	go func() {
		st, err := n.record(fn, "A")
		replies <- reply{st, err}
	}()
	// Land the signal inside the record's snapshot/journal window when
	// the timing cooperates; every outcome is asserted either way.
	time.Sleep(2 * time.Millisecond)
	n.terminate()
	r := <-replies
	n.waitExit(t, 15*time.Second)

	requireNoTempFiles(t, state)
	entries, err := os.ReadDir(state)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".snap") {
			continue
		}
		if err := snapfile.Verify(filepath.Join(state, e.Name())); err != nil {
			t.Fatalf("snapfile %s fails verification after drain: %v", e.Name(), err)
		}
	}

	restarted := startNode(t, state, "")
	restarted.waitReady(t)
	info, st := restarted.getFn(t, fn)
	if st != http.StatusOK {
		t.Fatalf("registration lost across drain: get = %d", st)
	}
	if r.err == nil && r.status == http.StatusOK && !info.HasSnapshot {
		t.Fatal("record was acked before drain but snapshot is gone")
	}
	if info.HasSnapshot {
		if ist, err := restarted.invoke(fn, "B"); err != nil || ist != http.StatusOK {
			t.Fatalf("invoke of drained snapshot = %d, %v", ist, err)
		}
	}
}
