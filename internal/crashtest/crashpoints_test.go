package crashtest

// The crashpoint matrix: one scenario per named crashpoint in
// internal/chaos. Each scenario arms the point in a fresh daemon,
// drives the API until the process SIGKILLs itself there, restarts
// over the same state directory, and asserts the documented recovery
// contract for that boundary. Iterating chaos.Crashpoints() makes the
// matrix self-extending: declaring a new crashpoint without a scenario
// here fails the suite.

import (
	"fmt"
	"net/http"
	"os"
	"testing"
	"time"

	"faasnap/internal/chaos"
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "crashtest-bin-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := buildDaemon(dir); err != nil {
		os.RemoveAll(dir)
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

const fn = "hello-world"

// crashScenario drives one armed daemon to its death and checks the
// state a restarted daemon recovers.
type crashScenario struct {
	// prep runs acknowledged setup ops that must not hit the armed
	// point (e.g. register before a record-path crash).
	prep func(t *testing.T, n *node)
	// trigger fires the op that dies at the crashpoint. Errors are
	// expected — the reply socket dies with the process.
	trigger func(n *node)
	// verify asserts the recovery contract on the restarted daemon.
	verify func(t *testing.T, n *node, state string)
}

func prepRegister(t *testing.T, n *node) {
	t.Helper()
	if st, err := n.put(fn); err != nil || st != http.StatusOK {
		t.Fatalf("prep register = %d, %v", st, err)
	}
}

func prepRegisterRecord(t *testing.T, n *node) {
	t.Helper()
	prepRegister(t, n)
	if st, err := n.record(fn, "A"); err != nil || st != http.StatusOK {
		t.Fatalf("prep record = %d, %v", st, err)
	}
}

func triggerRecord(n *node) { _, _ = n.record(fn, "A") }
func triggerPut(n *node)    { _, _ = n.put(fn) }

// verifyRegisteredNoSnapshot: the registration is durable, the
// snapshot commit is not — and the half-finished record must neither
// serve nor leave droppings.
func verifyRegisteredNoSnapshot(t *testing.T, n *node, state string) {
	t.Helper()
	info, st := n.getFn(t, fn)
	if st != http.StatusOK || info.HasSnapshot {
		t.Fatalf("after restart: get = %d, has_snapshot = %v; want 200 and false", st, info.HasSnapshot)
	}
	if st, err := n.invoke(fn, "B"); err != nil || st != http.StatusNotFound {
		t.Fatalf("invoke without committed snapshot = %d, %v; want 404", st, err)
	}
}

var crashScenarios = map[string]crashScenario{
	// Temp file written, rename not reached: the commit never became
	// visible; recovery sweeps the temp file.
	chaos.CrashSnapfilePreRename: {
		prep:    prepRegister,
		trigger: triggerRecord,
		verify: func(t *testing.T, n *node, state string) {
			verifyRegisteredNoSnapshot(t, n, state)
			if exists(snapPath(state, fn)) {
				t.Fatal("uncommitted snapfile became visible")
			}
		},
	},
	// Renamed into place but the record op never journaled: the file is
	// an orphan — complete, but unacknowledged — and must be
	// quarantined, never served.
	chaos.CrashSnapfilePostRename: {
		prep:    prepRegister,
		trigger: triggerRecord,
		verify: func(t *testing.T, n *node, state string) {
			verifyRegisteredNoSnapshot(t, n, state)
			if exists(snapPath(state, fn)) {
				t.Fatal("orphan snapfile still in deploy path")
			}
			if !exists(quarantinePath(state, fn)) {
				t.Fatal("orphan snapfile not quarantined")
			}
		},
	},
	// Journal bytes written but not fsynced — the canonical torn tail.
	// The op may or may not survive; either way the daemon must come
	// back healthy and accept a full re-provision.
	chaos.CrashManifestPreSync: {
		trigger: triggerPut,
		verify: func(t *testing.T, n *node, state string) {
			if _, st := n.getFn(t, fn); st != http.StatusOK && st != http.StatusNotFound {
				t.Fatalf("after torn tail: get = %d, want 200 or 404", st)
			}
			if st, err := n.put(fn); err != nil || st != http.StatusOK {
				t.Fatalf("re-register after torn tail = %d, %v", st, err)
			}
			if st, err := n.record(fn, "A"); err != nil || st != http.StatusOK {
				t.Fatalf("re-record after torn tail = %d, %v", st, err)
			}
			if st, err := n.invoke(fn, "B"); err != nil || st != http.StatusOK {
				t.Fatalf("invoke after torn tail = %d, %v", st, err)
			}
		},
	},
	// Journal record fsynced: durable even though no reply was sent.
	chaos.CrashManifestPostAppend: {
		trigger: triggerPut,
		verify: func(t *testing.T, n *node, state string) {
			if _, st := n.getFn(t, fn); st != http.StatusOK {
				t.Fatalf("fsynced registration lost: get = %d", st)
			}
		},
	},
	// Snapfile committed, record op not journaled: orphan, quarantined.
	chaos.CrashRecordPreJournal: {
		prep:    prepRegister,
		trigger: triggerRecord,
		verify: func(t *testing.T, n *node, state string) {
			verifyRegisteredNoSnapshot(t, n, state)
			if !exists(quarantinePath(state, fn)) {
				t.Fatal("unjournaled snapshot not quarantined")
			}
		},
	},
	// Reply written: the record is acknowledged and must fully survive.
	chaos.CrashRecordPostReply: {
		prep:    prepRegister,
		trigger: triggerRecord,
		verify: func(t *testing.T, n *node, state string) {
			info, st := n.getFn(t, fn)
			if st != http.StatusOK || !info.HasSnapshot {
				t.Fatalf("acked record lost: get = %d, has_snapshot = %v", st, info.HasSnapshot)
			}
			if st, err := n.invoke(fn, "B"); err != nil || st != http.StatusOK {
				t.Fatalf("invoke of acked snapshot = %d, %v", st, err)
			}
			if c := chunkCount(t, state); c == 0 {
				t.Fatal("acked record has no chunks in the store")
			}
		},
	},
	// Chunk temp file written and fsynced, rename not reached: the
	// chunk never became addressable. Recovery sweeps the temp file and
	// nothing references the half-written content.
	chaos.CrashChunkPreRename: {
		prep:    prepRegister,
		trigger: triggerRecord,
		verify: func(t *testing.T, n *node, state string) {
			verifyRegisteredNoSnapshot(t, n, state)
			if exists(snapPath(state, fn)) {
				t.Fatal("snapfile committed despite chunk-write crash")
			}
			if c := chunkCount(t, state); c != 0 {
				t.Fatalf("%d orphan chunks survived recovery GC", c)
			}
		},
	},
	// Chunk renamed into place, then crash: the chunk is durable but no
	// committed snapfile references it — recovery GC collects it rather
	// than leaking store space forever.
	chaos.CrashChunkPostRename: {
		prep:    prepRegister,
		trigger: triggerRecord,
		verify: func(t *testing.T, n *node, state string) {
			verifyRegisteredNoSnapshot(t, n, state)
			if exists(snapPath(state, fn)) {
				t.Fatal("snapfile committed despite chunk-write crash")
			}
			if c := chunkCount(t, state); c != 0 {
				t.Fatalf("%d orphan chunks survived recovery GC", c)
			}
		},
	},
	// Every chunk landed, snapfile commit not reached: the record was
	// never acknowledged, so the chunks are all orphans and must be
	// collected; the registration survives clean.
	chaos.CrashRecordPostChunks: {
		prep:    prepRegister,
		trigger: triggerRecord,
		verify: func(t *testing.T, n *node, state string) {
			verifyRegisteredNoSnapshot(t, n, state)
			if exists(snapPath(state, fn)) {
				t.Fatal("snapfile committed despite pre-commit crash")
			}
			if c := chunkCount(t, state); c != 0 {
				t.Fatalf("%d orphan chunks survived recovery GC", c)
			}
		},
	},
	// Registration journaled, reply unsent: durable.
	chaos.CrashRegisterPostJournal: {
		trigger: triggerPut,
		verify: func(t *testing.T, n *node, state string) {
			if _, st := n.getFn(t, fn); st != http.StatusOK {
				t.Fatalf("journaled registration lost: get = %d", st)
			}
		},
	},
	// Delete tombstone journaled, .snap file not yet unlinked: the
	// function must stay deleted and the leftover file must not
	// resurrect it.
	chaos.CrashDeletePostJournal: {
		prep: prepRegisterRecord,
		trigger: func(n *node) {
			_, _ = n.delete(fn)
		},
		verify: func(t *testing.T, n *node, state string) {
			if _, st := n.getFn(t, fn); st != http.StatusNotFound {
				t.Fatalf("deleted function resurrected: get = %d", st)
			}
			if st, err := n.invoke(fn, "B"); err != nil || st != http.StatusNotFound {
				t.Fatalf("invoke of deleted function = %d, %v", st, err)
			}
			if exists(snapPath(state, fn)) {
				t.Fatal("tombstoned snapfile still in deploy path")
			}
			// The name is reusable: a fresh registration starts clean.
			if st, err := n.put(fn); err != nil || st != http.StatusOK {
				t.Fatalf("re-register after delete = %d, %v", st, err)
			}
			if info, st := n.getFn(t, fn); st != http.StatusOK || info.HasSnapshot {
				t.Fatalf("re-registration inherited old snapshot: get = %d, has_snapshot = %v",
					st, info.HasSnapshot)
			}
		},
	},
}

func TestCrashpointMatrix(t *testing.T) {
	for _, point := range chaos.Crashpoints() {
		sc, ok := crashScenarios[point]
		if !ok {
			t.Errorf("crashpoint %q has no scenario — add one to crashScenarios", point)
			continue
		}
		t.Run(point, func(t *testing.T) {
			t.Parallel()
			state := t.TempDir()

			armed := startNode(t, state, point)
			armed.waitReady(t)
			if sc.prep != nil {
				sc.prep(t, armed)
			}
			sc.trigger(armed)
			armed.waitExit(t, 10*time.Second)

			restarted := startNode(t, state, "")
			restarted.waitReady(t)
			requireNoTempFiles(t, state)
			sc.verify(t, restarted, state)
		})
	}
}
