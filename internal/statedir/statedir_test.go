package statedir

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustOpen(t *testing.T, dir string) (*Manifest, *Recovery) {
	t.Helper()
	m, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m, rec
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, rec := mustOpen(t, dir)
	if !rec.Created {
		t.Fatal("fresh dir should create the manifest")
	}
	if g, err := m.Register("alpha", ""); err != nil || g != 1 {
		t.Fatalf("register = %d, %v", g, err)
	}
	if g, err := m.Record("alpha", "A"); err != nil || g != 2 {
		t.Fatalf("record = %d, %v", g, err)
	}
	if g, err := m.Register("custom", `{"name":"custom"}`); err != nil || g != 1 {
		t.Fatalf("register custom = %d, %v", g, err)
	}
	if g, err := m.Delete("alpha"); err != nil || g != 3 {
		t.Fatalf("delete = %d, %v", g, err)
	}
	digest := m.Digest()
	m.Close()

	m2, rec2 := mustOpen(t, dir)
	if rec2.Created || rec2.TornBytes != 0 {
		t.Fatalf("reopen recovery = %+v", rec2)
	}
	if rec2.Replayed != 4 {
		t.Fatalf("replayed %d records, want 4", rec2.Replayed)
	}
	if d := m2.Digest(); d != digest {
		t.Fatalf("digest changed across reopen: %s vs %s", d, digest)
	}
	e, ok := m2.Get("alpha")
	if !ok || !e.Deleted || e.Generation != 3 || e.HasSnapshot {
		t.Fatalf("alpha after replay = %+v", e)
	}
	c, ok := m2.Get("custom")
	if !ok || c.Deleted || c.Spec != `{"name":"custom"}` || c.Generation != 1 {
		t.Fatalf("custom after replay = %+v", c)
	}
	live := m2.Live()
	if len(live) != 1 || live[0].Name != "custom" {
		t.Fatalf("live = %+v", live)
	}
	if all := m2.Entries(); len(all) != 2 {
		t.Fatalf("entries = %+v", all)
	}
}

func TestGenerationsMonotonicAcrossDelete(t *testing.T) {
	dir := t.TempDir()
	m, _ := mustOpen(t, dir)
	m.Register("fn", "")
	m.Record("fn", "A")
	m.Delete("fn")
	g, err := m.Register("fn", "")
	if err != nil || g != 4 {
		t.Fatalf("re-register after delete = %d, %v (generations must never restart)", g, err)
	}
	e, _ := m.Get("fn")
	if e.Deleted || e.HasSnapshot {
		t.Fatalf("re-registered entry = %+v", e)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	m, _ := mustOpen(t, t.TempDir())
	g1, _ := m.Register("fn", "")
	g2, _ := m.Register("fn", "")
	if g1 != g2 {
		t.Fatalf("re-register bumped generation %d -> %d", g1, g2)
	}
	// A changed spec is a real mutation.
	g3, _ := m.Register("fn", `{"name":"fn"}`)
	if g3 != g1+1 {
		t.Fatalf("spec change generation = %d, want %d", g3, g1+1)
	}
}

func TestTornTailTruncatedAndQuarantined(t *testing.T) {
	dir := t.TempDir()
	m, _ := mustOpen(t, dir)
	m.Register("keep", "")
	m.Record("keep", "A")
	m.Close()

	// Simulate a crash mid-append: a partial frame at the tail.
	path := filepath.Join(dir, ManifestName)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, clean...), 0x46, 0x53, 0x4d, 0x4c, 0xff, 0x00)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, rec := mustOpen(t, dir)
	if rec.TornBytes != len(torn)-len(clean) {
		t.Fatalf("torn bytes = %d, want %d", rec.TornBytes, len(torn)-len(clean))
	}
	if rec.Evidence == "" {
		t.Fatal("torn tail not preserved as evidence")
	}
	if !strings.Contains(rec.Evidence, "quarantine") {
		t.Fatalf("evidence outside quarantine dir: %s", rec.Evidence)
	}
	if rec.Replayed != 2 {
		t.Fatalf("replayed = %d, want 2", rec.Replayed)
	}
	e, ok := m2.Get("keep")
	if !ok || !e.HasSnapshot {
		t.Fatalf("acknowledged state lost after torn tail: %+v", e)
	}
	// The journal must be usable again: append and reopen.
	if _, err := m2.Register("after", ""); err != nil {
		t.Fatalf("append after truncation: %v", err)
	}
	m2.Close()
	m3, rec3 := mustOpen(t, dir)
	if rec3.TornBytes != 0 || rec3.Replayed != 3 {
		t.Fatalf("third open recovery = %+v", rec3)
	}
	if _, ok := m3.Get("after"); !ok {
		t.Fatal("post-truncation append lost")
	}
}

func TestCorruptMidRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	m, _ := mustOpen(t, dir)
	m.Register("a", "")
	m.Register("b", "")
	m.Close()

	path := filepath.Join(dir, ManifestName)
	raw, _ := os.ReadFile(path)
	// Flip a byte inside the second frame's payload: CRC must catch it
	// and recovery must keep only the first record.
	raw[len(raw)-3] ^= 0xff
	os.WriteFile(path, raw, 0o644)

	m2, rec := mustOpen(t, dir)
	if rec.Replayed != 1 || rec.TornBytes == 0 {
		t.Fatalf("recovery = %+v, want 1 replayed and a quarantined tail", rec)
	}
	if _, ok := m2.Get("b"); ok {
		t.Fatal("corrupt record served")
	}
	if _, ok := m2.Get("a"); !ok {
		t.Fatal("valid prefix lost")
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	m, _ := mustOpen(t, dir)
	// Churn one function far past the compaction threshold.
	m.Register("fn", "")
	for i := 0; i < 300; i++ {
		if _, err := m.Record("fn", "A"); err != nil {
			t.Fatal(err)
		}
	}
	m.Register("other", "")
	m.Delete("other")
	digest := m.Digest()
	fi, err := os.Stat(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	// 302+ records at ~60 bytes each would be ~18KB uncompacted; after
	// compaction only the post-rewrite tail (at most the threshold's
	// worth of records) remains.
	if fi.Size() > 8*1024 {
		t.Fatalf("log not compacted: %d bytes", fi.Size())
	}
	m.Close()

	m2, rec := mustOpen(t, dir)
	if rec.TornBytes != 0 {
		t.Fatalf("compacted log torn: %+v", rec)
	}
	if d := m2.Digest(); d != digest {
		t.Fatalf("digest changed across compaction reopen: %s vs %s", d, digest)
	}
	e, _ := m2.Get("fn")
	if !e.HasSnapshot || e.Generation != 301 {
		t.Fatalf("fn after compaction = %+v", e)
	}
	o, _ := m2.Get("other")
	if !o.Deleted {
		t.Fatalf("tombstone lost in compaction: %+v", o)
	}
}

func TestDigestDiffersAcrossStates(t *testing.T) {
	m1, _ := mustOpen(t, t.TempDir())
	m2, _ := mustOpen(t, t.TempDir())
	m1.Register("fn", "")
	m2.Register("fn", "")
	if m1.Digest() != m2.Digest() {
		t.Fatal("equal states, unequal digests")
	}
	m2.Record("fn", "A")
	if m1.Digest() == m2.Digest() {
		t.Fatal("different states, equal digests")
	}
}

func TestQuarantinePathNeverCollides(t *testing.T) {
	qdir := t.TempDir()
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		p := QuarantinePath(qdir, "fn.snap")
		if seen[p] {
			t.Fatalf("collision: %s", p)
		}
		seen[p] = true
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if !seen[filepath.Join(qdir, "fn.snap")] || !seen[filepath.Join(qdir, "fn.snap.2")] {
		t.Fatalf("unexpected naming: %v", seen)
	}
}
