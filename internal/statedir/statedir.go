// Package statedir is the daemon's crash-consistent durable state
// layer: a fsync-disciplined, CRC-framed, append-only manifest that
// records every function registration, snapshot recording, and delete
// the daemon has acknowledged. The snapshot files on disk *are* the
// FaaS platform — every warm invocation deploys from them — so the
// manifest is the source of truth a restarted daemon recovers from:
// replaying it rebuilds the registry exactly as acknowledged, detects
// torn tail writes from a crash mid-append, and carries the monotonic
// per-function generation numbers the gateway's anti-entropy sweep
// compares across replicas.
//
// Durability discipline:
//
//   - every appended record is a framed payload (magic, length, CRC-32
//     of the payload) written and fsynced before the daemon replies;
//   - compaction rewrites the whole log to a temp file, fsyncs it,
//     renames it over the log, and fsyncs the parent directory — the
//     same atomic-commit sequence snapfile.Save uses;
//   - recovery accepts a torn or corrupt tail (the crash window is
//     exactly one unacknowledged record), truncates it, and preserves
//     the torn bytes under quarantine/ as evidence; it never serves a
//     record that fails its CRC.
package statedir

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"faasnap/internal/chaos"
)

const (
	// ManifestName is the journal's file name inside the state dir.
	ManifestName = "manifest.log"
	// frameMagic marks the start of every record frame ("FSML").
	frameMagic = 0x4c4d5346
	// maxPayload guards replay against corrupt length fields.
	maxPayload = 1 << 20
	// compactSlack: compaction triggers when the records appended since
	// open exceed 4x the live entries plus this slack, keeping the log
	// O(live set) without rewriting it on every delete.
	compactSlack = 64
)

// Op is a manifest record's operation.
type Op string

const (
	// OpRegister registers a function (spec-only; no snapshot yet).
	OpRegister Op = "register"
	// OpRecord marks a recorded snapshot committed to disk.
	OpRecord Op = "record"
	// OpInvalidate clears a function's snapshot (quarantined at
	// recovery) while keeping the registration.
	OpInvalidate Op = "invalidate"
	// OpDelete tombstones a function. Tombstones are retained so a
	// rejoined replica cannot resurrect a deleted function.
	OpDelete Op = "delete"
	// OpEntry sets a function's full entry verbatim; compaction emits
	// one per entry so a compacted log replays to the identical state.
	OpEntry Op = "entry"
)

// record is one journal record's JSON payload.
type record struct {
	Op    Op     `json:"op"`
	Name  string `json:"name"`
	Gen   uint64 `json:"gen"`
	Spec  string `json:"spec,omitempty"`
	Input string `json:"input,omitempty"`
	// Snap carries HasSnapshot for OpEntry records.
	Snap bool `json:"snap,omitempty"`
	// Del carries Deleted for OpEntry records.
	Del bool `json:"del,omitempty"`
}

// Entry is one function's durable state. Deleted entries (tombstones)
// are retained and reported so replicas can distinguish "never had it"
// from "deleted it at generation G".
type Entry struct {
	Name        string `json:"name"`
	Generation  uint64 `json:"generation"`
	Deleted     bool   `json:"deleted,omitempty"`
	HasSnapshot bool   `json:"has_snapshot,omitempty"`
	RecordInput string `json:"record_input,omitempty"`
	// Spec is the defining SpecConfig JSON for custom functions, empty
	// for catalog functions (resolved by name).
	Spec string `json:"spec,omitempty"`
}

// Recovery reports what Open found and repaired.
type Recovery struct {
	// Created is true when no manifest existed (first boot or a legacy
	// state dir) and a fresh one was created.
	Created bool
	// Replayed counts the records applied.
	Replayed int
	// TornBytes is the size of the invalid tail truncated from the
	// journal, 0 for a clean log.
	TornBytes int
	// Evidence is where the torn tail was preserved, when TornBytes>0.
	Evidence string
}

// Manifest is the open journal plus its replayed in-memory state.
type Manifest struct {
	mu      sync.Mutex
	dir     string
	path    string
	f       *os.File
	entries map[string]*Entry
	// appends counts records written since open/compaction.
	appends int
}

// Open replays (creating if absent) the manifest in dir. The returned
// Recovery says whether a torn tail was truncated; its evidence file
// lives under dir/quarantine/.
func Open(dir string) (*Manifest, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	m := &Manifest{
		dir:     dir,
		path:    filepath.Join(dir, ManifestName),
		entries: make(map[string]*Entry),
	}
	rec := &Recovery{}
	raw, err := os.ReadFile(m.path)
	switch {
	case os.IsNotExist(err):
		rec.Created = true
	case err != nil:
		return nil, nil, fmt.Errorf("statedir: read manifest: %w", err)
	default:
		good, replayed, perr := m.replay(raw)
		rec.Replayed = replayed
		if good < len(raw) {
			// The tail is torn (crash mid-append) or corrupt. Everything
			// past the last valid frame was never acknowledged; preserve
			// it as evidence and truncate the journal back to the good
			// prefix so the next append starts on a frame boundary.
			rec.TornBytes = len(raw) - good
			rec.Evidence, _ = quarantineBytes(dir, "manifest.torn", raw[good:])
			if err := os.Truncate(m.path, int64(good)); err != nil {
				return nil, nil, fmt.Errorf("statedir: truncate torn tail: %w", err)
			}
			_ = perr // the torn tail is expected after a crash; evidence preserved
		}
	}
	f, err := os.OpenFile(m.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("statedir: open manifest: %w", err)
	}
	m.f = f
	if rec.Created {
		// Make the journal's existence itself durable before anything
		// is acknowledged against it.
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("statedir: sync manifest: %w", err)
		}
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("statedir: sync state dir: %w", err)
		}
	}
	return m, rec, nil
}

// replay applies every valid frame in raw, returning the byte offset
// of the first invalid frame (== len(raw) for a clean log), the count
// of applied records, and what was wrong with the first invalid frame.
func (m *Manifest) replay(raw []byte) (int, int, error) {
	off, applied := 0, 0
	for off < len(raw) {
		if len(raw)-off < 12 {
			return off, applied, io.ErrUnexpectedEOF
		}
		if binary.LittleEndian.Uint32(raw[off:]) != frameMagic {
			return off, applied, fmt.Errorf("bad frame magic at offset %d", off)
		}
		n := binary.LittleEndian.Uint32(raw[off+4:])
		if n == 0 || n > maxPayload {
			return off, applied, fmt.Errorf("bad frame length %d at offset %d", n, off)
		}
		if len(raw)-off-12 < int(n) {
			return off, applied, io.ErrUnexpectedEOF
		}
		wantCRC := binary.LittleEndian.Uint32(raw[off+8:])
		payload := raw[off+12 : off+12+int(n)]
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return off, applied, fmt.Errorf("frame CRC mismatch at offset %d", off)
		}
		var r record
		if err := json.Unmarshal(payload, &r); err != nil {
			return off, applied, fmt.Errorf("frame payload at offset %d: %w", off, err)
		}
		if err := m.apply(r); err != nil {
			return off, applied, err
		}
		off += 12 + int(n)
		applied++
	}
	return off, applied, nil
}

// apply folds one record into the in-memory state.
func (m *Manifest) apply(r record) error {
	if r.Name == "" {
		return fmt.Errorf("record with empty name")
	}
	e := m.entries[r.Name]
	if e == nil {
		e = &Entry{Name: r.Name}
		m.entries[r.Name] = e
	}
	switch r.Op {
	case OpRegister:
		e.Deleted = false
		e.Spec = r.Spec
	case OpRecord:
		e.HasSnapshot = true
		e.RecordInput = r.Input
	case OpInvalidate:
		e.HasSnapshot = false
	case OpDelete:
		e.Deleted = true
		e.HasSnapshot = false
		e.RecordInput = ""
	case OpEntry:
		e.Spec = r.Spec
		e.HasSnapshot = r.Snap
		e.Deleted = r.Del
		e.RecordInput = r.Input
	default:
		return fmt.Errorf("unknown op %q", r.Op)
	}
	e.Generation = r.Gen
	return nil
}

// append journals one record: frame, write, fsync, then apply. The
// fsync happens before apply and before the caller replies, so an
// acknowledged operation is always on disk, and a crash between write
// and fsync leaves only an unacknowledged torn tail.
func (m *Manifest) append(r record) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("statedir: encode record: %w", err)
	}
	frame := make([]byte, 12+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], frameMagic)
	binary.LittleEndian.PutUint32(frame[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[8:], crc32.ChecksumIEEE(payload))
	copy(frame[12:], payload)
	if _, err := m.f.Write(frame); err != nil {
		return fmt.Errorf("statedir: append: %w", err)
	}
	chaos.MaybeCrash(chaos.CrashManifestPreSync)
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("statedir: sync: %w", err)
	}
	chaos.MaybeCrash(chaos.CrashManifestPostAppend)
	if err := m.apply(r); err != nil {
		return err
	}
	m.appends++
	if m.appends > 4*len(m.entries)+compactSlack {
		// Best-effort: a failed compaction leaves the (valid, longer)
		// log in place.
		_ = m.compactLocked()
	}
	return nil
}

// nextGen returns name's next generation number: monotonic across the
// function's whole history, including deletes and re-registrations.
func (m *Manifest) nextGen(name string) uint64 {
	if e := m.entries[name]; e != nil {
		return e.Generation + 1
	}
	return 1
}

// Register journals a function registration (spec-only). spec is the
// defining SpecConfig JSON for custom functions, "" for catalog ones.
// Registering an existing live function with the same spec is a no-op
// returning the current generation.
func (m *Manifest) Register(name, spec string) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e := m.entries[name]; e != nil && !e.Deleted && e.Spec == spec {
		return e.Generation, nil
	}
	gen := m.nextGen(name)
	if err := m.append(record{Op: OpRegister, Name: name, Gen: gen, Spec: spec}); err != nil {
		return 0, err
	}
	return gen, nil
}

// Record journals a committed snapshot recording for name.
func (m *Manifest) Record(name, input string) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	gen := m.nextGen(name)
	if err := m.append(record{Op: OpRecord, Name: name, Gen: gen, Input: input}); err != nil {
		return 0, err
	}
	return gen, nil
}

// Invalidate journals the loss of name's snapshot (quarantined or
// missing at recovery) while keeping the registration live.
func (m *Manifest) Invalidate(name string) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	gen := m.nextGen(name)
	if err := m.append(record{Op: OpInvalidate, Name: name, Gen: gen}); err != nil {
		return 0, err
	}
	return gen, nil
}

// Delete journals a tombstone for name.
func (m *Manifest) Delete(name string) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	gen := m.nextGen(name)
	if err := m.append(record{Op: OpDelete, Name: name, Gen: gen}); err != nil {
		return 0, err
	}
	return gen, nil
}

// Get returns name's entry (tombstones included).
func (m *Manifest) Get(name string) (Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[name]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// Entries returns every entry — live and tombstoned — sorted by name.
func (m *Manifest) Entries() []Entry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Entry, 0, len(m.entries))
	for _, e := range m.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Live returns the non-tombstoned entries, sorted by name.
func (m *Manifest) Live() []Entry {
	all := m.Entries()
	out := all[:0]
	for _, e := range all {
		if !e.Deleted {
			out = append(out, e)
		}
	}
	return out
}

// Digest is a position-independent hash of the full entry set
// (tombstones included): two replicas with equal digests hold the same
// durable state. Reported by GET /manifest and compared by the
// gateway's anti-entropy sweep.
func (m *Manifest) Digest() string {
	h := fnv.New64a()
	for _, e := range m.Entries() {
		fmt.Fprintf(h, "%s|%d|%t|%t|%s|%s;", e.Name, e.Generation, e.Deleted, e.HasSnapshot, e.RecordInput, e.Spec)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Compact rewrites the journal to one OpEntry record per entry via the
// atomic temp-write + fsync + rename + dir-sync sequence.
func (m *Manifest) Compact() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.compactLocked()
}

func (m *Manifest) compactLocked() error {
	tmp := m.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(m.entries))
	for n := range m.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		e := m.entries[n]
		payload, err := json.Marshal(record{
			Op: OpEntry, Name: e.Name, Gen: e.Generation,
			Spec: e.Spec, Input: e.RecordInput, Snap: e.HasSnapshot, Del: e.Deleted,
		})
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		frame := make([]byte, 12+len(payload))
		binary.LittleEndian.PutUint32(frame[0:], frameMagic)
		binary.LittleEndian.PutUint32(frame[4:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[8:], crc32.ChecksumIEEE(payload))
		copy(frame[12:], payload)
		if _, err := f.Write(frame); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, m.path); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(m.dir); err != nil {
		return err
	}
	old := m.f
	nf, err := os.OpenFile(m.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	m.f = nf
	old.Close()
	m.appends = 0
	return nil
}

// Close closes the journal.
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return nil
	}
	err := m.f.Close()
	m.f = nil
	return err
}

// syncDir fsyncs a directory so a rename or create inside it is
// durable (the metadata half of the atomic-commit sequence).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// quarantineBytes preserves evidence bytes under dir/quarantine/ with
// a collision-free name (base, base.2, base.3, ...).
func quarantineBytes(dir, base string, raw []byte) (string, error) {
	qdir := filepath.Join(dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return "", err
	}
	dst := QuarantinePath(qdir, base)
	if err := os.WriteFile(dst, raw, 0o644); err != nil {
		return "", err
	}
	return dst, nil
}

// QuarantinePath returns a collision-free destination for base inside
// qdir: the bare name if free, else base.2, base.3, ... — repeated
// quarantines of the same function must never overwrite prior
// evidence.
func QuarantinePath(qdir, base string) string {
	dst := filepath.Join(qdir, base)
	if _, err := os.Lstat(dst); os.IsNotExist(err) {
		return dst
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s.%d", dst, i)
		if _, err := os.Lstat(cand); os.IsNotExist(err) {
			return cand
		}
	}
}
