package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBackoffDelayBounds(t *testing.T) {
	for n := 0; n < 8; n++ {
		base := 2 * time.Millisecond
		d := BackoffDelay(n, base, 100*time.Millisecond)
		lo := base << uint(n)
		if lo > 100*time.Millisecond {
			lo = 100 * time.Millisecond
		}
		hi := lo + lo/2
		if d < lo || d > hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", n, d, lo, hi)
		}
	}
	// Zero/negative base falls back to something positive.
	if d := BackoffDelay(0, 0, 0); d <= 0 {
		t.Fatalf("zero base gave %v", d)
	}
	// Shift overflow clamps to the cap instead of going negative.
	if d := BackoffDelay(62, time.Second, time.Minute); d <= 0 || d > 90*time.Second {
		t.Fatalf("overflowing attempt gave %v", d)
	}
}

func TestRetrySucceedsAfterFailures(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), 3, time.Microsecond, nil, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := Retry(context.Background(), 3, time.Microsecond, nil, func() error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRetryStopsOnNonRetryable(t *testing.T) {
	fatal := errors.New("fatal")
	calls := 0
	err := Retry(context.Background(), 5, time.Microsecond, func(err error) bool { return false }, func() error {
		calls++
		return fatal
	})
	if !errors.Is(err, fatal) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, 10, time.Hour, nil, func() error {
		calls++
		cancel() // cancel during the first backoff wait
		return errors.New("transient")
	})
	if err == nil || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	// Already-expired context: fn never runs, ctx error comes back.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	err = Retry(done, 3, time.Microsecond, nil, func() error {
		t.Fatal("fn ran under dead context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	var transitions []BreakerState
	b := NewBreaker(3, time.Second, func(s BreakerState) { transitions = append(transitions, s) })
	b.SetClock(func() time.Time { return now })

	// Closed until the third consecutive failure.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker rejected")
		}
		b.Failure()
	}
	if b.State() != Closed {
		t.Fatalf("state after 2 failures: %v", b.State())
	}
	b.Allow()
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state after 3 failures: %v", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted before cooldown")
	}

	// After cooldown: exactly one half-open probe.
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("half-open probe rejected")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state during probe: %v", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}

	// A failed probe re-opens immediately (single failure, not threshold).
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state after failed probe: %v", b.State())
	}

	// A successful probe closes.
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("second probe rejected")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state after good probe: %v", b.State())
	}

	want := []BreakerState{Open, HalfOpen, Open, HalfOpen, Closed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, transitions[i], want[i])
		}
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := NewBreaker(3, time.Second, nil)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatalf("non-consecutive failures opened breaker: %v", b.State())
	}
}

func TestBreakerStateString(t *testing.T) {
	cases := map[BreakerState]string{Closed: "closed", Open: "open", HalfOpen: "half-open", BreakerState(9): "unknown"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestLimiterWeightedAdmission(t *testing.T) {
	l := NewLimiter(4)
	if l.Max() != 4 {
		t.Fatalf("max %d", l.Max())
	}
	if !l.Acquire(3) {
		t.Fatal("first acquire rejected")
	}
	if l.Acquire(2) {
		t.Fatal("over-capacity acquire admitted")
	}
	if !l.Acquire(1) {
		t.Fatal("exact-fit acquire rejected")
	}
	if l.InFlight() != 4 {
		t.Fatalf("in-flight %d", l.InFlight())
	}
	l.Release(3)
	if !l.Acquire(2) {
		t.Fatal("post-release acquire rejected")
	}
	l.Release(2)
	l.Release(1)
	if l.InFlight() != 0 {
		t.Fatalf("leaked weight: %d", l.InFlight())
	}
}

func TestLimiterConcurrentNeverOversubscribes(t *testing.T) {
	const max, workers = 8, 64
	l := NewLimiter(max)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if l.Acquire(1) {
					if got := l.InFlight(); got > max {
						t.Errorf("in-flight %d exceeds max %d", got, max)
					}
					l.Release(1)
				}
			}
		}()
	}
	wg.Wait()
	if l.InFlight() != 0 {
		t.Fatalf("leaked weight: %d", l.InFlight())
	}
}

// TestBackoffDelayConcurrent hammers the lock-free jitter source from
// many goroutines: every delay must stay inside the documented
// [d, 1.5·d) bound, and the jitter must actually vary — a stuck or
// zeroed source would collapse every delay onto the lower bound and
// re-synchronize all backers-off into retry storms.
func TestBackoffDelayConcurrent(t *testing.T) {
	const workers, per = 16, 500
	base := 8 * time.Millisecond
	delays := make(chan time.Duration, workers*per)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				delays <- BackoffDelay(0, base, 0)
			}
		}()
	}
	wg.Wait()
	close(delays)
	distinct := make(map[time.Duration]struct{})
	for d := range delays {
		if d < base || d >= base+base/2 {
			t.Fatalf("delay %v outside [%v, %v)", d, base, base+base/2)
		}
		distinct[d] = struct{}{}
	}
	if len(distinct) < workers*per/10 {
		t.Fatalf("jitter collapsed: only %d distinct delays in %d draws", len(distinct), workers*per)
	}
}
