// Package resilience holds the small, dependency-free building blocks
// the daemon's invocation pipeline survives failures with: bounded
// retries with jittered exponential backoff, a per-function circuit
// breaker, and an admission-control limiter. All three are safe for
// concurrent use.
package resilience

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// jitterSeq drives the backoff jitter source. Retry timing does not
// need to be reproducible, only bounded — but it must not serialize:
// the previous implementation guarded one math/rand.Rand with a
// package-global mutex, which every backing-off goroutine in the
// process contended on. Instead each call takes one atomic Add on this
// counter and whitens it with SplitMix64, which is lock-free, cheap,
// and passes through the full 64-bit state space (the Weyl increment
// is odd, so the sequence has period 2⁶⁴).
var jitterSeq atomic.Uint64

// jitterFrac returns a uniform float in [0, 1) from the lock-free
// sequence.
func jitterFrac() float64 {
	z := jitterSeq.Add(0x9e3779b97f4a7c15) // golden-ratio Weyl step
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// BackoffDelay returns the sleep before retry attempt n (0-based):
// base·2ⁿ plus up to 50% jitter, capped at max (0 means no cap). The
// result is deterministically bounded: always in [d, 1.5·d) for the
// capped exponential d.
func BackoffDelay(n int, base, max time.Duration) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	d := base << uint(n)
	if d <= 0 || (max > 0 && d > max) { // overflow or cap
		d = max
		if d == 0 {
			d = base
		}
	}
	return d + time.Duration(jitterFrac()*0.5*float64(d))
}

// Retry runs fn up to attempts times, backing off between failures and
// stopping early when ctx is done or when retryable reports the error
// is not worth retrying. It returns nil on the first success, the
// context error if the deadline cut the loop short, and otherwise the
// last error fn returned. A nil retryable retries everything.
func Retry(ctx context.Context, attempts int, base time.Duration, retryable func(error) bool, fn func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for n := 0; n < attempts; n++ {
		if ctxErr := ctx.Err(); ctxErr != nil {
			if err != nil {
				return err
			}
			return ctxErr
		}
		if err = fn(); err == nil {
			return nil
		}
		if retryable != nil && !retryable(err) {
			return err
		}
		if n == attempts-1 {
			break
		}
		t := time.NewTimer(BackoffDelay(n, base, 500*time.Millisecond))
		select {
		case <-ctx.Done():
			t.Stop()
			return err
		case <-t.C:
		}
	}
	return err
}

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// Closed passes requests through, counting consecutive failures.
	Closed BreakerState = iota
	// Open rejects requests until the cooldown elapses.
	Open
	// HalfOpen admits one probe; its outcome closes or re-opens.
	HalfOpen
)

// String returns the conventional state name.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a consecutive-failure circuit breaker: Threshold failures
// in a row open it; after Cooldown one probe is admitted, and its
// outcome closes the breaker or re-arms the cooldown.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	onChange  func(BreakerState)

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
}

// NewBreaker builds a breaker. onChange (may be nil) runs on every
// state transition, outside the breaker's lock order guarantees —
// keep it cheap (a telemetry gauge update).
func NewBreaker(threshold int, cooldown time.Duration, onChange func(BreakerState)) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		onChange:  onChange,
	}
}

// SetClock overrides the breaker's clock (tests).
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
}

func (b *Breaker) transition(to BreakerState) {
	if b.state == to {
		return
	}
	b.state = to
	if b.onChange != nil {
		b.onChange(to)
	}
}

// Allow reports whether a request may take the guarded path. In Open it
// flips to HalfOpen once the cooldown has elapsed and admits a single
// probe; concurrent callers during the probe are rejected.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.transition(HalfOpen)
		b.probing = true
		return true
	case HalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Success reports a guarded-path success, closing the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	b.transition(Closed)
}

// Failure reports a guarded-path failure. The threshold'th consecutive
// failure — or any failed half-open probe — opens the breaker.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	b.probing = false
	if b.state == HalfOpen || b.failures >= b.threshold {
		b.openedAt = b.now()
		b.failures = 0
		b.transition(Open)
	}
}

// State returns the current state without side effects.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Limiter is a weighted in-flight admission controller: Acquire(w)
// succeeds while the running total stays within max.
type Limiter struct {
	max int64
	cur atomic.Int64
}

// NewLimiter bounds total in-flight weight to max (≤ 0 means 1).
func NewLimiter(max int64) *Limiter {
	if max <= 0 {
		max = 1
	}
	return &Limiter{max: max}
}

// Acquire tries to admit weight w, returning false (without admitting)
// when the limiter is saturated.
func (l *Limiter) Acquire(w int64) bool {
	for {
		cur := l.cur.Load()
		if cur+w > l.max {
			return false
		}
		if l.cur.CompareAndSwap(cur, cur+w) {
			return true
		}
	}
}

// Release returns weight w admitted by a successful Acquire.
func (l *Limiter) Release(w int64) { l.cur.Add(-w) }

// InFlight returns the admitted weight.
func (l *Limiter) InFlight() int64 { return l.cur.Load() }

// Max returns the limiter's capacity.
func (l *Limiter) Max() int64 { return l.max }
